//! Live server instrumentation behind `GET /metrics`.
//!
//! Counters are lock-free atomics bumped on the request path; the two
//! latency [`Histogram`]s sit behind a mutex (one `record` per request /
//! job, far off any simulator hot loop). A scrape snapshots everything
//! into a fresh [`Registry`] and renders the strict Prometheus text the
//! existing `promlint` parser validates — the metric *names* below are
//! schema, pinned by `tests/serve_metrics_schema.rs`.

use sms_metrics::{Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Shared instrument set for one server process.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    /// HTTP requests accepted for processing (any endpoint).
    pub requests: AtomicU64,
    /// Requests refused with a 4xx (parse or validation failures).
    pub bad_requests: AtomicU64,
    /// Connections shed with `503 Retry-After` at the admission gate.
    pub shed: AtomicU64,
    /// Sweep jobs admitted (after request-level dedup).
    pub jobs: AtomicU64,
    /// Jobs currently executing or queued on the pool.
    pub jobs_in_flight: AtomicU64,
    /// Jobs served from the on-disk result cache.
    pub cache_hits: AtomicU64,
    /// Jobs that ran the simulator.
    pub cache_misses: AtomicU64,
    /// Jobs that attached to another request's in-flight execution.
    pub singleflight_shared: AtomicU64,
    /// Jobs that ended in a structured error.
    pub jobs_failed: AtomicU64,
    /// Wall-clock per handled request, microseconds.
    pub request_latency_us: Mutex<Histogram>,
    /// Wall-clock per finished job, microseconds.
    pub job_latency_us: Mutex<Histogram>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            jobs_in_flight: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            singleflight_shared: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            request_latency_us: Mutex::new(Histogram::new()),
            job_latency_us: Mutex::new(Histogram::new()),
        }
    }
}

impl ServerMetrics {
    /// A fresh instrument set; uptime counts from here.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// Bumps a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's wall-clock latency.
    pub fn observe_request(&self, micros: u64) {
        self.request_latency_us.lock().unwrap_or_else(PoisonError::into_inner).record(micros);
    }

    /// Records one job's wall-clock latency.
    pub fn observe_job(&self, micros: u64) {
        self.job_latency_us.lock().unwrap_or_else(PoisonError::into_inner).record(micros);
    }

    /// Snapshots every instrument into a registry. `uptime` overrides the
    /// measured uptime when given (tests pin it for golden output).
    pub fn registry(&self, uptime_secs: Option<f64>) -> Registry {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut reg = Registry::new();
        reg.gauge(
            "sms_serve_uptime_seconds",
            "Seconds since the server started",
            uptime_secs.unwrap_or_else(|| self.started.elapsed().as_secs_f64()),
        );
        reg.counter(
            "sms_serve_requests_total",
            "HTTP requests accepted for processing",
            get(&self.requests),
        );
        reg.counter(
            "sms_serve_bad_requests_total",
            "Requests refused with a 4xx status",
            get(&self.bad_requests),
        );
        reg.counter(
            "sms_serve_shed_total",
            "Connections shed with 503 at the admission gate",
            get(&self.shed),
        );
        reg.counter("sms_serve_jobs_total", "Sweep jobs admitted", get(&self.jobs));
        reg.gauge(
            "sms_serve_jobs_in_flight",
            "Jobs currently executing or queued",
            get(&self.jobs_in_flight) as f64,
        );
        reg.counter(
            "sms_serve_cache_hits_total",
            "Jobs served from the shared result cache",
            get(&self.cache_hits),
        );
        reg.counter(
            "sms_serve_cache_misses_total",
            "Jobs that ran the simulator",
            get(&self.cache_misses),
        );
        reg.counter(
            "sms_serve_singleflight_shared_total",
            "Jobs that attached to another request's in-flight execution",
            get(&self.singleflight_shared),
        );
        reg.counter(
            "sms_serve_jobs_failed_total",
            "Jobs that ended in a structured error",
            get(&self.jobs_failed),
        );
        let hist = |m: &Mutex<Histogram>| m.lock().unwrap_or_else(PoisonError::into_inner).clone();
        reg.histogram(
            "sms_serve_request_latency_us",
            "Wall-clock per handled request, microseconds",
            hist(&self.request_latency_us),
        );
        reg.histogram(
            "sms_serve_job_latency_us",
            "Wall-clock per finished job, microseconds",
            hist(&self.job_latency_us),
        );
        reg
    }

    /// Renders the live `/metrics` payload.
    pub fn render(&self) -> String {
        self.registry(None).render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_strictly_parseable() {
        let m = ServerMetrics::new();
        ServerMetrics::inc(&m.requests);
        ServerMetrics::inc(&m.cache_hits);
        m.observe_request(1234);
        m.observe_job(99);
        let text = m.render();
        sms_metrics::prom::validate(&text).expect("strict parse");
        let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        assert_eq!(families, 12, "every instrument renders exactly once");
        assert!(text.contains("sms_serve_requests_total 1"));
    }
}
