//! `sms-fleet`: the fault-tolerant front tier over a pool of `sms-serve`
//! backends.
//!
//! A fleet speaks the same wire protocol as a single server — `POST
//! /v1/sweep` in, journal-codec JSONL out — but instead of simulating it
//! *routes*: each deduplicated `(scene, config)` cell becomes one
//! single-cell sweep dispatched to a backend, with the failure handling a
//! multi-process deployment needs layered on top:
//!
//! * **Work stealing** — cells live in one shared queue; any worker may
//!   pick up a retried cell and send it to a different backend than the
//!   one that failed it.
//! * **Circuit breakers** — per-backend consecutive-failure breakers.
//!   An open breaker removes the backend from routing for a cooldown;
//!   the first dispatch after the cooldown is a half-open probe whose
//!   outcome re-closes (success) or re-opens (failure) the breaker.
//! * **Bounded retries** — a cell is attempted at most
//!   [`FleetConfig::cell_attempts`] times across all backends; transport
//!   failures, 5xx and interrupted streams are retryable, a *structured*
//!   simulation failure is the simulator's deterministic verdict and is
//!   reported as-is (retrying it elsewhere would produce the same
//!   failure and waste a healthy backend's time).
//! * **Hedged dispatch** — when a cell has not answered after
//!   [`FleetConfig::hedge_after`], a duplicate dispatch goes to a second
//!   backend and the first success wins. The backends' single-flight
//!   tables and the shared on-disk cache make hedges idempotent: the
//!   losing dispatch is either coalesced or a cache hit, never a second
//!   simulation.
//! * **Graceful degradation** — with every breaker open, sweeps whose
//!   cells are all cached are served from the cache alone; anything
//!   needing a live simulation is shed with `503` and a `Retry-After`
//!   derived from the breaker cooldown, so clients come back exactly
//!   when a half-open probe could have recovered a backend.
//!
//! The fleet keeps its own journal (cells keyed like any harness run, so
//! `SMS_RESUME` replays it) and a `sms_fleet_*` metrics registry with
//! per-backend labeled families. Fault injection lives in the
//! *backends* (`SMS_FAULT` on `sms-serve`); the fleet's behaviour under
//! those faults is what the chaos tests pin down.

use crate::client::{Client, ClientConfig};
use crate::http::{self, ChunkedWriter, HttpError, Limits, Request};
use crate::protocol::{self, JobRecord};
use sms_harness::json::Json;
use sms_harness::log::env_positive;
use sms_harness::trace::wall_us;
use sms_harness::{CacheKey, Event, Journal, ResultCache, TraceContext};
use sms_metrics::{Histogram, Registry};
use sms_sim::gpu::SimStats;
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Construction-time fleet knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Backend `host:port` addresses to route over.
    pub backends: Vec<String>,
    /// Concurrent cell dispatches (worker threads per sweep request).
    pub workers: usize,
    /// Active-connection bound; connections beyond it are shed with 503.
    pub max_conns: usize,
    /// Per-request job cap (`scenes × configs`); larger sweeps get a 400.
    pub max_jobs_per_request: usize,
    /// Consecutive failures that open a backend's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker keeps a backend out of routing before a
    /// half-open probe is allowed. Also drives the degraded-mode
    /// `Retry-After`.
    pub breaker_cooldown: Duration,
    /// Total dispatch attempts per cell (first try included) before the
    /// cell is reported as failed.
    pub cell_attempts: u32,
    /// Hedge threshold: a cell still unanswered after this long gets a
    /// duplicate dispatch on a second backend. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Per-dispatch deadline; must comfortably exceed one simulation
    /// (a single-cell sweep streams nothing between `job_queued` and the
    /// finished line).
    pub cell_timeout: Duration,
    /// HTTP parsing limits and socket timeouts for the *front* side.
    pub limits: Limits,
    /// Shared result-cache directory (degraded-mode serving); should be
    /// the same directory the backends write.
    pub cache_dir: Option<PathBuf>,
    /// Fleet journal path; `None` keeps it in memory only.
    pub journal_path: Option<PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            workers: 8,
            max_conns: 64,
            max_jobs_per_request: 256,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            cell_attempts: 4,
            hedge_after: None,
            cell_timeout: Duration::from_secs(600),
            limits: Limits::default(),
            cache_dir: None,
            journal_path: None,
        }
    }
}

impl FleetConfig {
    /// Reads the environment knobs:
    ///
    /// * `SMS_FLEET_ADDR` — bind address (default `127.0.0.1:7746`).
    /// * `SMS_FLEET_BACKENDS` — comma-separated backend `host:port` list.
    /// * `SMS_FLEET_WORKERS` — concurrent cell dispatches.
    /// * `SMS_FLEET_ATTEMPTS` — dispatch attempts per cell.
    /// * `SMS_FLEET_COOLDOWN_MS` — breaker cooldown.
    /// * `SMS_FLEET_HEDGE_MS` — hedge threshold (unset disables hedging).
    /// * `SMS_FLEET_CELL_TIMEOUT_MS` — per-dispatch deadline.
    /// * `SMS_CACHE_DIR` / `SMS_NO_CACHE=1` — shared cache directory.
    /// * `SMS_FLEET_JOURNAL` (or `SMS_JOURNAL`) — fleet journal path.
    pub fn from_env() -> Self {
        let mut cfg = FleetConfig {
            addr: std::env::var("SMS_FLEET_ADDR").unwrap_or_else(|_| "127.0.0.1:7746".to_owned()),
            ..FleetConfig::default()
        };
        if let Ok(list) = std::env::var("SMS_FLEET_BACKENDS") {
            cfg.backends = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
        }
        if let Some(n) = env_positive("SMS_FLEET_WORKERS") {
            cfg.workers = n;
        }
        if let Some(n) = env_positive("SMS_FLEET_ATTEMPTS") {
            cfg.cell_attempts = n as u32;
        }
        if let Some(ms) = env_positive("SMS_FLEET_COOLDOWN_MS") {
            cfg.breaker_cooldown = Duration::from_millis(ms as u64);
        }
        if let Some(ms) = env_positive("SMS_FLEET_HEDGE_MS") {
            cfg.hedge_after = Some(Duration::from_millis(ms as u64));
        }
        if let Some(ms) = env_positive("SMS_FLEET_CELL_TIMEOUT_MS") {
            cfg.cell_timeout = Duration::from_millis(ms as u64);
        }
        if std::env::var("SMS_NO_CACHE").is_ok_and(|v| v == "1") {
            cfg.cache_dir = None;
        } else if let Ok(dir) = std::env::var("SMS_CACHE_DIR") {
            cfg.cache_dir = Some(PathBuf::from(dir));
        }
        if let Ok(path) =
            std::env::var("SMS_FLEET_JOURNAL").or_else(|_| std::env::var("SMS_JOURNAL"))
        {
            cfg.journal_path = Some(PathBuf::from(path));
        }
        cfg
    }
}

/// One backend's circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Routing normally; `fails` consecutive failures so far.
    Closed { fails: u32 },
    /// Out of routing until the cooldown expires.
    Open { until: Instant },
    /// One probe dispatch is out; its outcome decides the next state.
    HalfOpen,
}

/// Live routing state for one backend.
struct BackendState {
    addr: String,
    breaker: Mutex<Breaker>,
    /// Dispatches currently outstanding (least-loaded routing).
    inflight: AtomicU64,
    /// Cells this backend answered successfully.
    jobs_done: AtomicU64,
    /// Dispatches this backend failed (transport, 5xx, bad stream).
    failures: AtomicU64,
}

/// A point-in-time view of one backend, for `/metrics`.
#[derive(Debug, Clone)]
pub struct BackendSnapshot {
    /// The backend's `host:port` (the `backend` label value).
    pub addr: String,
    /// `false` while the breaker is open.
    pub up: bool,
    /// Cells answered successfully.
    pub jobs: u64,
    /// Failed dispatches.
    pub failures: u64,
    /// Breaker state as a gauge value: 0 closed, 1 half-open, 2 open.
    pub breaker_state: u8,
}

/// Shared instrument set for one fleet process (`sms_fleet_*`).
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// HTTP requests accepted for processing (any endpoint).
    pub requests: AtomicU64,
    /// Requests refused with a 4xx (parse or validation failures).
    pub bad_requests: AtomicU64,
    /// Sweep requests admitted.
    pub sweeps: AtomicU64,
    /// Cells admitted (after request-level dedup).
    pub cells: AtomicU64,
    /// Cells that exhausted their attempts or failed structurally.
    pub cells_failed: AtomicU64,
    /// Dispatch rounds that failed on every contacted backend.
    pub retries: AtomicU64,
    /// Retried cells that moved to a different backend.
    pub steals: AtomicU64,
    /// Duplicate dispatches fired for straggling cells.
    pub hedges: AtomicU64,
    /// Hedged cells won by the duplicate, not the original.
    pub hedge_wins: AtomicU64,
    /// Cells served straight from the shared cache with no healthy
    /// backend available.
    pub degraded_hits: AtomicU64,
    /// Requests shed with 503 (connection cap, drain, or all-down).
    pub shed: AtomicU64,
    /// Breaker transitions into the open state.
    pub breaker_opens: AtomicU64,
    /// Wall-clock per settled cell, microseconds.
    pub cell_latency_us: Mutex<Histogram>,
}

impl FleetMetrics {
    /// Bumps a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one settled cell's wall-clock latency.
    pub fn observe_cell(&self, micros: u64) {
        self.cell_latency_us.lock().unwrap_or_else(PoisonError::into_inner).record(micros);
    }

    /// Snapshots every instrument into a registry. `uptime` overrides the
    /// measured uptime when given (tests pin it for golden output).
    pub fn registry(&self, uptime_secs: f64, backends: &[BackendSnapshot]) -> Registry {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut reg = Registry::new();
        reg.gauge("sms_fleet_uptime_seconds", "Seconds since the fleet started", uptime_secs);
        reg.counter(
            "sms_fleet_requests_total",
            "HTTP requests accepted for processing",
            get(&self.requests),
        );
        reg.counter(
            "sms_fleet_bad_requests_total",
            "Requests refused with a 4xx status",
            get(&self.bad_requests),
        );
        reg.counter("sms_fleet_sweeps_total", "Sweep requests admitted", get(&self.sweeps));
        reg.counter("sms_fleet_cells_total", "Cells admitted after dedup", get(&self.cells));
        reg.counter(
            "sms_fleet_cells_failed_total",
            "Cells that exhausted their attempts or failed structurally",
            get(&self.cells_failed),
        );
        reg.counter(
            "sms_fleet_retries_total",
            "Dispatch rounds that failed on every contacted backend",
            get(&self.retries),
        );
        reg.counter(
            "sms_fleet_steals_total",
            "Retried cells that moved to a different backend",
            get(&self.steals),
        );
        reg.counter(
            "sms_fleet_hedges_total",
            "Duplicate dispatches fired for straggling cells",
            get(&self.hedges),
        );
        reg.counter(
            "sms_fleet_hedge_wins_total",
            "Hedged cells won by the duplicate dispatch",
            get(&self.hedge_wins),
        );
        reg.counter(
            "sms_fleet_degraded_hits_total",
            "Cells served from cache with no healthy backend",
            get(&self.degraded_hits),
        );
        reg.counter("sms_fleet_shed_total", "Requests shed with 503", get(&self.shed));
        reg.counter(
            "sms_fleet_breaker_opens_total",
            "Circuit-breaker transitions into the open state",
            get(&self.breaker_opens),
        );
        reg.gauge("sms_fleet_backends", "Configured backends", backends.len() as f64);
        for b in backends {
            reg.labeled_gauge(
                "sms_fleet_backend_up",
                "Backend routability (0 while its breaker is open)",
                &[("backend", &b.addr)],
                if b.up { 1.0 } else { 0.0 },
            );
        }
        for b in backends {
            reg.labeled_counter(
                "sms_fleet_backend_jobs_total",
                "Cells answered successfully, per backend",
                &[("backend", &b.addr)],
                b.jobs,
            );
        }
        for b in backends {
            reg.labeled_counter(
                "sms_fleet_backend_failures_total",
                "Failed dispatches, per backend",
                &[("backend", &b.addr)],
                b.failures,
            );
        }
        for b in backends {
            reg.labeled_gauge(
                "sms_fleet_breaker_state",
                "Circuit-breaker state per backend (0 closed, 1 half-open, 2 open)",
                &[("backend", &b.addr)],
                f64::from(b.breaker_state),
            );
        }
        let git_hash = std::env::var("SMS_GIT_HASH").unwrap_or_else(|_| "unknown".to_owned());
        reg.labeled_gauge(
            "sms_build_info",
            "Build metadata; the value is always 1",
            &[("version", env!("CARGO_PKG_VERSION")), ("git_hash", &git_hash)],
            1.0,
        );
        reg.histogram(
            "sms_fleet_cell_latency_us",
            "Wall-clock per settled cell, microseconds",
            self.cell_latency_us.lock().unwrap_or_else(PoisonError::into_inner).clone(),
        );
        reg
    }
}

/// Everything the fleet's handler threads share.
struct FleetState {
    config: FleetConfig,
    backends: Vec<BackendState>,
    cache: Option<ResultCache>,
    /// Key computation even when the disk cache is off.
    keyer: ResultCache,
    journal: Journal,
    metrics: FleetMetrics,
    started: Instant,
    /// Fleet-unique cell ids for the journal (stream ids are per-request).
    job_seq: AtomicU64,
    draining: AtomicBool,
    active_conns: AtomicU64,
}

impl FleetState {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
            || crate::server::signal_drain_flag().load(Ordering::SeqCst)
    }

    fn lock_breaker(&self, i: usize) -> std::sync::MutexGuard<'_, Breaker> {
        self.backends[i].breaker.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Picks the least-loaded closed-breaker backend, or promotes one
    /// expired open breaker to a half-open probe. `exclude` keeps a hedge
    /// off the backend already trying the cell.
    fn pick_backend(&self, exclude: Option<usize>) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for i in 0..self.backends.len() {
            if Some(i) == exclude {
                continue;
            }
            if matches!(*self.lock_breaker(i), Breaker::Closed { .. }) {
                let load = self.backends[i].inflight.load(Ordering::SeqCst);
                if best.is_none_or(|(_, l)| load < l) {
                    best = Some((i, load));
                }
            }
        }
        if let Some((i, _)) = best {
            return Some(i);
        }
        // No closed breaker: allow at most one half-open probe through.
        let now = Instant::now();
        for i in 0..self.backends.len() {
            if Some(i) == exclude {
                continue;
            }
            let mut breaker = self.lock_breaker(i);
            if let Breaker::Open { until } = *breaker {
                if until <= now {
                    *breaker = Breaker::HalfOpen;
                    return Some(i);
                }
            }
        }
        None
    }

    /// `true` when at least one backend could take a dispatch right now
    /// (closed, probing, or past its cooldown).
    fn any_backend_usable(&self) -> bool {
        let now = Instant::now();
        (0..self.backends.len()).any(|i| match *self.lock_breaker(i) {
            Breaker::Closed { .. } | Breaker::HalfOpen => true,
            Breaker::Open { until } => until <= now,
        })
    }

    /// A successful dispatch closes the backend's breaker outright.
    fn on_backend_success(&self, i: usize) {
        self.backends[i].jobs_done.fetch_add(1, Ordering::Relaxed);
        *self.lock_breaker(i) = Breaker::Closed { fails: 0 };
    }

    /// A failed dispatch counts toward the threshold; at the threshold —
    /// or on a failed half-open probe — the breaker opens.
    fn on_backend_failure(&self, i: usize) {
        self.backends[i].failures.fetch_add(1, Ordering::Relaxed);
        let mut breaker = self.lock_breaker(i);
        let open = Breaker::Open { until: Instant::now() + self.config.breaker_cooldown };
        match *breaker {
            Breaker::Closed { fails } if fails + 1 >= self.config.breaker_threshold => {
                *breaker = open;
                FleetMetrics::inc(&self.metrics.breaker_opens);
            }
            Breaker::Closed { fails } => *breaker = Breaker::Closed { fails: fails + 1 },
            Breaker::HalfOpen => {
                *breaker = open;
                FleetMetrics::inc(&self.metrics.breaker_opens);
            }
            Breaker::Open { .. } => {}
        }
    }

    fn backend_snapshots(&self) -> Vec<BackendSnapshot> {
        self.backends
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let breaker = *self.lock_breaker(i);
                BackendSnapshot {
                    addr: b.addr.clone(),
                    up: matches!(breaker, Breaker::Closed { .. } | Breaker::HalfOpen),
                    jobs: b.jobs_done.load(Ordering::Relaxed),
                    failures: b.failures.load(Ordering::Relaxed),
                    breaker_state: match breaker {
                        Breaker::Closed { .. } => 0,
                        Breaker::HalfOpen => 1,
                        Breaker::Open { .. } => 2,
                    },
                }
            })
            .collect()
    }

    /// The breaker label value for dispatch-span attribution, read at
    /// dispatch time (after `pick_backend`, so open never appears here).
    fn breaker_label(&self, i: usize) -> &'static str {
        match *self.lock_breaker(i) {
            Breaker::Closed { .. } => "closed",
            Breaker::HalfOpen => "half_open",
            Breaker::Open { .. } => "open",
        }
    }

    fn render_metrics(&self) -> String {
        self.metrics
            .registry(self.started.elapsed().as_secs_f64(), &self.backend_snapshots())
            .render_prometheus()
    }

    /// A client for one single-cell dispatch: no client-side retries or
    /// hedging (the fleet owns both), socket read timeout stretched to the
    /// cell deadline (a single-cell sweep streams nothing while the
    /// simulation runs). `trace` is the dispatch span context; it rides
    /// the wire as `x-sms-trace` so the backend parents under it.
    fn cell_client(&self, backend: &str, trace: Option<TraceContext>) -> Client {
        let mut limits = self.config.limits;
        limits.read_timeout = self.config.cell_timeout;
        Client::with_config(ClientConfig {
            addr: backend.to_owned(),
            retries: 0,
            deadline: self.config.cell_timeout,
            hedge_after: None,
            limits,
            trace,
            ..ClientConfig::default()
        })
    }
}

/// One dispatch of one cell to one backend, as a single-cell sweep.
/// Transport errors, non-200s, interrupted streams and malformed record
/// counts all come back as `Err` (retryable); a structured simulation
/// failure comes back as `Ok` with the record's own `Err` outcome.
fn dispatch_once(
    state: &Arc<FleetState>,
    backend_idx: usize,
    req: &sms_harness::RunRequest,
    render_name: &str,
    trace: Option<TraceContext>,
) -> Result<JobRecord, String> {
    let backend = &state.backends[backend_idx];
    backend.inflight.fetch_add(1, Ordering::SeqCst);
    let client = state.cell_client(&backend.addr, trace);
    let config_label = req.stack.label();
    let outcome = client.sweep(&[req.scene.name()], &[&config_label], render_name);
    backend.inflight.fetch_sub(1, Ordering::SeqCst);
    match outcome {
        Ok(sweep) => {
            let n = sweep.records.len();
            let mut records = sweep.records;
            match records.pop() {
                Some(record) if n == 1 => Ok(record),
                _ => Err(format!("backend {}: {n} records for a single-cell sweep", backend.addr)),
            }
        }
        Err(e) => Err(format!("backend {}: {e}", backend.addr)),
    }
}

/// How one cell finally settled.
enum CellOutcome {
    /// A usable result (live dispatch or degraded cache hit).
    Done { stats: Box<SimStats>, cache: String, backend: Option<usize> },
    /// A terminal failure (structured, or attempts exhausted).
    Fail { error: String, backend: Option<usize> },
}

/// One queue entry: a cell and its attempt history.
struct CellTask {
    idx: usize,
    attempts: u32,
    last_backend: Option<usize>,
    /// The cell's span context when the sweep arrived traced; every
    /// dispatch span (retries and hedges included) parents under it.
    ctx: Option<TraceContext>,
}

/// Everything needed to record one in-flight dispatch's span when its
/// outcome (or cancellation) is decided.
struct DispatchSpan {
    backend: usize,
    ctx: TraceContext,
    start_us: u64,
    attempt: u32,
    hedge: bool,
    breaker: &'static str,
}

/// Records one settled dispatch span into the fleet journal. `outcome` is
/// `ok`, `error`, or `cancelled` (the hedge loser at the decision point).
fn record_dispatch_span(state: &FleetState, d: &DispatchSpan, outcome: &str) {
    let attrs = vec![
        ("backend".to_owned(), state.backends[d.backend].addr.clone()),
        ("attempt".to_owned(), d.attempt.to_string()),
        ("hedge".to_owned(), if d.hedge { "1" } else { "0" }.to_owned()),
        ("breaker_state".to_owned(), d.breaker.to_owned()),
        ("outcome".to_owned(), outcome.to_owned()),
    ];
    let dur = wall_us().saturating_sub(d.start_us);
    state.journal.record(Event::span(&d.ctx, "dispatch", "client", d.start_us, dur, attrs));
}

enum RoundResult {
    Settled(CellOutcome),
    Requeue,
}

/// One dispatch round for one cell: pick a backend (or degrade), fire the
/// primary, hedge on a straggle, attribute breaker outcomes, and decide
/// settle-vs-requeue.
fn run_cell_round(
    state: &Arc<FleetState>,
    task: &mut CellTask,
    jobs: &[(sms_harness::RunRequest, CacheKey)],
    render_name: &str,
) -> RoundResult {
    let (req, key) = &jobs[task.idx];
    task.attempts += 1;
    let Some(primary) = state.pick_backend(None) else {
        // Degraded mode: no routable backend. Cached cells are still
        // served; everything else waits for a breaker to half-open, then
        // fails once the attempt budget runs out — never hangs.
        if let Some(stats) = state.cache.as_ref().and_then(|c| c.load(key)) {
            FleetMetrics::inc(&state.metrics.degraded_hits);
            return RoundResult::Settled(CellOutcome::Done {
                stats: Box::new(stats),
                cache: "hit".to_owned(),
                backend: None,
            });
        }
        if task.attempts >= state.config.cell_attempts {
            return RoundResult::Settled(CellOutcome::Fail {
                error: format!("no healthy backend within {} attempts", task.attempts),
                backend: None,
            });
        }
        std::thread::sleep(state.config.breaker_cooldown.min(Duration::from_millis(50)));
        return RoundResult::Requeue;
    };
    if task.attempts > 1 && task.last_backend.is_some_and(|last| last != primary) {
        // A retry moving to a different backend is a successful steal.
        FleetMetrics::inc(&state.metrics.steals);
    }
    task.last_backend = Some(primary);

    let (tx, rx) = mpsc::channel::<(usize, Result<JobRecord, String>)>();
    let mut spans: Vec<DispatchSpan> = Vec::new();
    let mut spawn_dispatch =
        |idx: usize, hedged: bool, tx: mpsc::Sender<(usize, Result<JobRecord, String>)>| {
            let ctx = task.ctx.map(|cell| cell.child());
            if let Some(ctx) = ctx {
                spans.push(DispatchSpan {
                    backend: idx,
                    ctx,
                    start_us: wall_us(),
                    attempt: task.attempts,
                    hedge: hedged,
                    breaker: state.breaker_label(idx),
                });
            }
            let state = Arc::clone(state);
            let req = *req;
            let render = render_name.to_owned();
            std::thread::spawn(move || {
                let result = dispatch_once(&state, idx, &req, &render, ctx);
                let _ = tx.send((idx, result));
            });
        };
    spawn_dispatch(primary, false, tx.clone());
    let mut outstanding = 1u32;
    let mut hedge: Option<usize> = None;
    // Hold the first message when it beat the hedge threshold, so the
    // collection loop below is the only place results are interpreted.
    let mut first = match state.config.hedge_after {
        Some(hedge_after) => match rx.recv_timeout(hedge_after) {
            Ok(msg) => Some(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(second) = state.pick_backend(Some(primary)) {
                    FleetMetrics::inc(&state.metrics.hedges);
                    spawn_dispatch(second, true, tx.clone());
                    outstanding += 1;
                    hedge = Some(second);
                }
                None
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => None,
        },
        None => None,
    };
    drop(tx);

    let mut last_error = "no backend contacted".to_owned();
    while outstanding > 0 {
        let Some((idx, result)) = first.take().or_else(|| rx.recv().ok()) else { break };
        outstanding -= 1;
        match result {
            Ok(record) => {
                state.on_backend_success(idx);
                if hedge == Some(idx) {
                    FleetMetrics::inc(&state.metrics.hedge_wins);
                }
                // The winner settles the cell; any still-outstanding
                // dispatch is the hedge race's loser. Its detached thread
                // runs on, but this is the decision point — record the
                // loser's span as cancelled here.
                for d in &spans {
                    let outcome = if d.backend == idx { "ok" } else { "cancelled" };
                    record_dispatch_span(state, d, outcome);
                }
                return RoundResult::Settled(match record.outcome {
                    Ok(stats) => CellOutcome::Done {
                        stats: Box::new(stats),
                        cache: record.cache,
                        backend: Some(idx),
                    },
                    // A structured failure is the simulator's own verdict:
                    // deterministic, so another backend would fail it the
                    // same way. Report it; don't burn the retry budget.
                    Err(error) => CellOutcome::Fail { error, backend: Some(idx) },
                });
            }
            Err(e) => {
                state.on_backend_failure(idx);
                if let Some(pos) = spans.iter().position(|d| d.backend == idx) {
                    record_dispatch_span(state, &spans.remove(pos), "error");
                }
                last_error = e;
            }
        }
    }
    // Both contacted backends failed (their spans are already recorded),
    // or the channel closed with nothing in flight.
    for d in &spans {
        record_dispatch_span(state, d, "error");
    }
    // Every contacted backend failed this round.
    FleetMetrics::inc(&state.metrics.retries);
    if task.attempts >= state.config.cell_attempts {
        return RoundResult::Settled(CellOutcome::Fail {
            error: format!("cell failed after {} attempts: {last_error}", task.attempts),
            backend: task.last_backend,
        });
    }
    RoundResult::Requeue
}

/// A worker thread: pop cells, run rounds, settle or requeue, until every
/// cell of the sweep has settled.
fn worker_loop(
    state: &Arc<FleetState>,
    queue: &Mutex<VecDeque<CellTask>>,
    remaining: &AtomicU64,
    jobs: &[(sms_harness::RunRequest, CacheKey)],
    render_name: &str,
    tx: &mpsc::Sender<(usize, CellOutcome, u64)>,
) {
    loop {
        if remaining.load(Ordering::SeqCst) == 0 {
            return;
        }
        let task = queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front();
        let Some(mut task) = task else {
            // Another worker may still requeue a failed cell.
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        let t0 = Instant::now();
        match run_cell_round(state, &mut task, jobs, render_name) {
            RoundResult::Settled(outcome) => {
                let _ = tx.send((task.idx, outcome, t0.elapsed().as_micros() as u64));
                remaining.fetch_sub(1, Ordering::SeqCst);
            }
            RoundResult::Requeue => {
                queue.lock().unwrap_or_else(PoisonError::into_inner).push_back(task);
            }
        }
    }
}

/// A running (or ready-to-run) fleet front tier.
pub struct FleetServer {
    listener: TcpListener,
    state: Arc<FleetState>,
}

/// A cloneable remote control for a fleet: request a drain, read the
/// bound address, inspect metrics.
#[derive(Clone)]
pub struct FleetHandle {
    state: Arc<FleetState>,
    addr: std::net::SocketAddr,
}

impl FleetHandle {
    /// The address the fleet is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting, finish in-flight work.
    pub fn request_drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }

    /// Renders the live Prometheus metrics (same payload as `/metrics`).
    pub fn render_metrics(&self) -> String {
        self.state.render_metrics()
    }
}

impl FleetServer {
    /// Binds the listener and prepares the shared state. The fleet does
    /// not accept connections until [`FleetServer::run`] is called.
    pub fn bind(config: FleetConfig) -> std::io::Result<FleetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let cache = config.cache_dir.clone().map(ResultCache::new);
        let keyer = ResultCache::new(PathBuf::new());
        let journal = Journal::new(config.journal_path.clone());
        let backends = config
            .backends
            .iter()
            .map(|addr| BackendState {
                addr: addr.clone(),
                breaker: Mutex::new(Breaker::Closed { fails: 0 }),
                inflight: AtomicU64::new(0),
                jobs_done: AtomicU64::new(0),
                failures: AtomicU64::new(0),
            })
            .collect();
        let state = Arc::new(FleetState {
            backends,
            cache,
            keyer,
            journal,
            metrics: FleetMetrics::default(),
            started: Instant::now(),
            job_seq: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            config,
        });
        state.journal.record(Event::BatchStart { jobs: 0, unique: 0, workers: 0 });
        Ok(FleetServer { listener, state })
    }

    /// The bound address (useful with `addr = 127.0.0.1:0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control handle for this fleet.
    pub fn handle(&self) -> std::io::Result<FleetHandle> {
        Ok(FleetHandle { state: Arc::clone(&self.state), addr: self.local_addr()? })
    }

    /// Accepts connections until a drain is requested, then waits for
    /// in-flight connections, flushes the journal, and returns.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            if self.state.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let active = self.state.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
                    if active > self.state.config.max_conns as u64 {
                        FleetMetrics::inc(&self.state.metrics.shed);
                        let mut stream = stream;
                        http::write_error(
                            &mut stream,
                            &HttpError {
                                status: 503,
                                message: "fleet at connection capacity; retry".to_owned(),
                            },
                        );
                        self.state.active_conns.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || {
                        handle_connection(&state, stream);
                        state.active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        while self.state.active_conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.journal.record(Event::BatchEnd {
            jobs: self.state.job_seq.load(Ordering::SeqCst) as usize,
            cache_hits: self.state.metrics.degraded_hits.load(Ordering::Relaxed) as usize,
            cache_misses: 0,
            failed: self.state.metrics.cells_failed.load(Ordering::Relaxed) as usize,
            duration_us: 0,
            sim_cycles: 0,
            breakdown: None,
            metrics: None,
            builds: Vec::new(),
        });
        self.state.journal.flush();
        Ok(())
    }

    /// Binds, then runs the accept loop on a background thread. Returns
    /// the handle plus the join handle whose `Ok(())` is the drained exit.
    pub fn spawn(
        config: FleetConfig,
    ) -> std::io::Result<(FleetHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = FleetServer::bind(config)?;
        let handle = server.handle()?;
        let join = std::thread::spawn(move || server.run());
        Ok((handle, join))
    }
}

/// Routes one connection's single request.
fn handle_connection(state: &Arc<FleetState>, mut stream: TcpStream) {
    let request = match http::read_request(&mut stream, &state.config.limits) {
        Ok(req) => req,
        Err(e) => {
            if (400..500).contains(&e.status) {
                FleetMetrics::inc(&state.metrics.bad_requests);
            }
            http::write_error(&mut stream, &e);
            return;
        }
    };
    FleetMetrics::inc(&state.metrics.requests);
    let outcome = route(state, &request, &mut stream);
    if let Err(e) = outcome {
        if (400..500).contains(&e.status) {
            FleetMetrics::inc(&state.metrics.bad_requests);
        }
        http::write_error(&mut stream, &e);
    }
}

fn route(
    state: &Arc<FleetState>,
    request: &Request,
    stream: &mut TcpStream,
) -> Result<(), HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            if state.draining() {
                Err(HttpError { status: 503, message: "draining".to_owned() })
            } else {
                write_ok(stream, "text/plain", b"ok\n")
            }
        }
        ("GET", "/metrics") => {
            let text = state.render_metrics();
            write_ok(stream, "text/plain; version=0.0.4", text.as_bytes())
        }
        ("POST", "/v1/drain") => {
            state.draining.store(true, Ordering::SeqCst);
            write_ok(stream, "text/plain", b"draining\n")
        }
        ("POST", "/v1/sweep") => handle_sweep(state, request, stream),
        ("GET", path) if path.starts_with("/v1/jobs/") => handle_probe(state, request, stream),
        _ => Err(HttpError {
            status: 404,
            message: format!("no route for {} {}", request.method, request.path),
        }),
    }
}

fn write_ok(stream: &mut TcpStream, content_type: &str, body: &[u8]) -> Result<(), HttpError> {
    http::write_response(stream, 200, content_type, &[], body)
        .map_err(|e| HttpError { status: 500, message: e.to_string() })
}

/// `GET /v1/jobs/<scene>/<config>[?render=<mode>]` — the same pure cache
/// probe a backend serves, answered from the fleet's shared cache view.
fn handle_probe(
    state: &Arc<FleetState>,
    request: &Request,
    stream: &mut TcpStream,
) -> Result<(), HttpError> {
    let bad = |message: String| HttpError { status: 400, message };
    let rest = request.path.trim_start_matches("/v1/jobs/");
    let (scene, config) = rest
        .split_once('/')
        .ok_or_else(|| bad("probe path must be /v1/jobs/<scene>/<config>".to_owned()))?;
    let scene = scene.parse::<sms_sim::scene::SceneId>().map_err(|e| bad(e.to_string()))?;
    let stack = protocol::parse_stack_config(config).map_err(bad)?;
    let mut render_name = "fast".to_owned();
    for pair in request.query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("render", mode)) => render_name = mode.to_owned(),
            _ => return Err(bad(format!("unknown query parameter `{pair}`"))),
        }
    }
    let render = protocol::parse_render(&render_name).map_err(bad)?;
    let req = sms_harness::RunRequest::new(scene, stack, render);
    let key = state.keyer.key(&req);
    match state.cache.as_ref().and_then(|c| c.load(&key)) {
        Some(stats) => {
            let doc = Json::Obj(vec![
                ("key".to_owned(), Json::Str(key.canonical.clone())),
                ("scene".to_owned(), Json::Str(scene.name().to_owned())),
                ("config".to_owned(), Json::Str(stack.label())),
                ("render".to_owned(), Json::Str(render_name)),
                ("stats".to_owned(), sms_harness::cache::stats_to_json(&stats)),
            ]);
            write_ok(stream, "application/json", format!("{doc}\n").as_bytes())
        }
        None => Err(HttpError { status: 404, message: format!("no cached result for {rest}") }),
    }
}

/// `POST /v1/sweep` — admit, dedupe, fan cells out over the backends,
/// stream journal-codec records as cells settle.
fn handle_sweep(
    state: &Arc<FleetState>,
    request: &Request,
    stream: &mut TcpStream,
) -> Result<(), HttpError> {
    if state.draining() {
        FleetMetrics::inc(&state.metrics.shed);
        return Err(HttpError {
            status: 503,
            message: "draining; not accepting sweeps".to_owned(),
        });
    }
    let sweep = protocol::parse_sweep(&request.body, state.config.max_jobs_per_request)
        .map_err(|message| HttpError { status: 400, message })?;
    FleetMetrics::inc(&state.metrics.sweeps);

    // Tracing is armed per request by the `x-sms-trace` header: the
    // fleet's sweep span parents under the client's span, each cell
    // parents under the sweep, and each dispatch under its cell. Untraced
    // requests record no span events at all, keeping journals
    // byte-identical to an untraced run.
    let sweep_ctx = request
        .header(sms_harness::TRACE_HEADER)
        .and_then(TraceContext::parse)
        .map(|peer| peer.child());
    let sweep_start_us = wall_us();

    // Request-level dedup on the canonical key, same as a backend.
    let mut jobs: Vec<(sms_harness::RunRequest, CacheKey)> = Vec::new();
    for req in &sweep.requests {
        let key = state.keyer.key(req);
        if !jobs.iter().any(|(_, k)| k.canonical == key.canonical) {
            jobs.push((*req, key));
        }
    }

    // Degraded admission: with no routable backend, a sweep that would
    // need a live simulation is shed *before* the stream starts, with a
    // Retry-After matched to the breaker cooldown. All-cached sweeps fall
    // through — the workers serve them without contacting anyone.
    if !state.any_backend_usable() {
        let all_cached =
            state.cache.as_ref().is_some_and(|c| jobs.iter().all(|(_, key)| c.load(key).is_some()));
        if !all_cached {
            FleetMetrics::inc(&state.metrics.shed);
            let secs = state.config.breaker_cooldown.as_secs().max(1).to_string();
            return http::write_response(
                stream,
                503,
                "text/plain",
                &[("Retry-After", &secs)],
                b"no healthy backend and sweep is not fully cached; retry\n",
            )
            .map_err(|e| HttpError { status: 500, message: e.to_string() });
        }
    }

    let t0 = Instant::now();
    let mut writer = ChunkedWriter::start(stream, 200, "application/jsonl")
        .map_err(|e| HttpError { status: 500, message: e.to_string() })?;

    let journal_base = state.job_seq.fetch_add(jobs.len() as u64, Ordering::SeqCst) as usize;
    for (local, (req, key)) in jobs.iter().enumerate() {
        FleetMetrics::inc(&state.metrics.cells);
        let line = protocol::job_queued_event(local, req, &key.canonical).to_json().to_string();
        let _ = writer.chunk(format!("{line}\n").as_bytes());
        state.journal.record(protocol::job_queued_event(journal_base + local, req, &key.canonical));
    }

    let cell_ctxs: Vec<Option<TraceContext>> =
        jobs.iter().map(|_| sweep_ctx.map(|ctx| ctx.child())).collect();
    let cell_start_us = wall_us();
    let queue: Mutex<VecDeque<CellTask>> = Mutex::new(
        (0..jobs.len())
            .map(|idx| CellTask { idx, attempts: 0, last_backend: None, ctx: cell_ctxs[idx] })
            .collect(),
    );
    let remaining = AtomicU64::new(jobs.len() as u64);
    let (tx, rx) = mpsc::channel::<(usize, CellOutcome, u64)>();
    let render_name = sweep.render_name.clone();
    let n_workers = state.config.workers.clamp(1, jobs.len().max(1));

    let (hits, misses, failed, sim_cycles) = std::thread::scope(|scope| {
        for _ in 0..n_workers {
            let tx = tx.clone();
            let (queue, remaining, jobs, render_name) = (&queue, &remaining, &jobs, &render_name);
            let state = Arc::clone(state);
            scope.spawn(move || worker_loop(&state, queue, remaining, jobs, render_name, &tx));
        }
        drop(tx);
        let mut hits = 0usize;
        let mut misses = 0usize;
        let mut failed = 0usize;
        let mut sim_cycles = 0u64;
        for (local, outcome, duration_us) in rx {
            state.metrics.observe_cell(duration_us);
            if let Some(ctx) = &cell_ctxs[local] {
                let (req, _) = &jobs[local];
                let mut attrs = vec![(
                    "cell".to_owned(),
                    format!("{}/{}", req.scene.name(), req.stack.label()),
                )];
                match &outcome {
                    CellOutcome::Done { cache, backend, .. } => {
                        attrs.push(("cache".to_owned(), cache.clone()));
                        if let Some(b) = backend {
                            attrs.push(("backend".to_owned(), state.backends[*b].addr.clone()));
                        }
                    }
                    CellOutcome::Fail { error, .. } => {
                        attrs.push(("error".to_owned(), error.clone()));
                    }
                }
                let dur = wall_us().saturating_sub(cell_start_us);
                state.journal.record(Event::span(
                    ctx,
                    "cell",
                    "internal",
                    cell_start_us,
                    dur,
                    attrs,
                ));
            }
            let line = match outcome {
                CellOutcome::Done { stats, cache, backend } => {
                    if cache == "miss" {
                        misses += 1;
                        sim_cycles += stats.cycles;
                    } else {
                        hits += 1;
                    }
                    render_finished_line(
                        state,
                        local,
                        journal_base + local,
                        backend,
                        &stats,
                        &cache,
                        duration_us,
                    )
                }
                CellOutcome::Fail { error, backend } => {
                    failed += 1;
                    FleetMetrics::inc(&state.metrics.cells_failed);
                    render_failed_line(
                        state,
                        local,
                        journal_base + local,
                        backend,
                        &error,
                        duration_us,
                    )
                }
            };
            // A closed peer is not an error: keep settling cells so the
            // journal and the backends' shared cache still warm up.
            let _ = writer.chunk(line.as_bytes());
        }
        (hits, misses, failed, sim_cycles)
    });

    let summary = Event::BatchEnd {
        jobs: jobs.len(),
        cache_hits: hits,
        cache_misses: misses,
        failed,
        duration_us: t0.elapsed().as_micros() as u64,
        sim_cycles,
        breakdown: None,
        metrics: None,
        builds: Vec::new(),
    };
    state.journal.record(summary.clone());
    if let Some(ctx) = &sweep_ctx {
        state.journal.record(Event::span(
            ctx,
            "sweep",
            "server",
            sweep_start_us,
            t0.elapsed().as_micros() as u64,
            vec![
                ("jobs".to_owned(), jobs.len().to_string()),
                ("failed".to_owned(), failed.to_string()),
            ],
        ));
    }
    let _ = writer.chunk(format!("{}\n", summary.to_json()).as_bytes());
    let _ = writer.finish();
    Ok(())
}

/// Builds one finished-cell stream line (journal codec; `worker` carries
/// the backend index) and mirrors it into the fleet journal under the
/// fleet-unique id. The backend's cache tier (`hit`/`miss`/`shared`) is
/// preserved so fleet streams read like backend streams.
fn render_finished_line(
    state: &Arc<FleetState>,
    local_job: usize,
    journal_job: usize,
    backend: Option<usize>,
    stats: &SimStats,
    cache_label: &str,
    duration_us: u64,
) -> String {
    let event = |job: usize| Event::JobFinished {
        job,
        worker: backend,
        cache_hit: cache_label != "miss",
        cycles: stats.cycles,
        duration_us,
        stats: Some(*stats),
        breakdown: None,
    };
    state.journal.record(event(journal_job));
    let mut doc = event(local_job).to_json();
    if cache_label == "shared" {
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "cache" {
                    *v = Json::Str("shared".to_owned());
                }
            }
        }
    }
    format!("{doc}\n")
}

/// Builds one failed-cell stream line and mirrors it into the journal.
fn render_failed_line(
    state: &Arc<FleetState>,
    local_job: usize,
    journal_job: usize,
    backend: Option<usize>,
    error: &str,
    duration_us: u64,
) -> String {
    let event = |job: usize| Event::RunFailed {
        job,
        worker: backend.unwrap_or(0),
        kind: "fleet".to_owned(),
        error: error.to_owned(),
        duration_us,
    };
    state.journal.record(event(journal_job));
    format!("{}\n", event(local_job).to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(backends: &[&str], threshold: u32, cooldown: Duration) -> Arc<FleetState> {
        let server = FleetServer::bind(FleetConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: backends.iter().map(|s| (*s).to_owned()).collect(),
            breaker_threshold: threshold,
            breaker_cooldown: cooldown,
            ..FleetConfig::default()
        })
        .expect("bind test fleet");
        Arc::clone(&server.state)
    }

    #[test]
    fn breaker_opens_at_threshold_and_probes_after_cooldown() {
        let state = test_state(&["a:1"], 2, Duration::from_millis(30));
        assert_eq!(state.pick_backend(None), Some(0));
        state.on_backend_failure(0);
        assert_eq!(state.pick_backend(None), Some(0), "one failure is below the threshold");
        state.on_backend_failure(0);
        assert_eq!(state.pick_backend(None), None, "breaker must open at the threshold");
        assert!(!state.any_backend_usable());
        assert_eq!(state.metrics.breaker_opens.load(Ordering::Relaxed), 1);

        std::thread::sleep(Duration::from_millis(40));
        assert!(state.any_backend_usable(), "cooldown expiry re-admits the backend");
        assert_eq!(state.pick_backend(None), Some(0), "first pick is the half-open probe");
        assert_eq!(state.pick_backend(None), None, "only one probe may be outstanding");

        // A successful probe re-closes the breaker; routing resumes.
        state.on_backend_success(0);
        assert_eq!(state.pick_backend(None), Some(0));
        assert_eq!(state.pick_backend(None), Some(0), "closed breaker routes freely");
    }

    #[test]
    fn failed_halfopen_probe_reopens_immediately() {
        let state = test_state(&["a:1"], 1, Duration::from_millis(30));
        state.on_backend_failure(0);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(state.pick_backend(None), Some(0));
        state.on_backend_failure(0);
        assert_eq!(state.pick_backend(None), None, "failed probe must reopen the breaker");
        assert_eq!(state.metrics.breaker_opens.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn routing_prefers_least_loaded_and_respects_exclude() {
        let state = test_state(&["a:1", "b:2"], 3, Duration::from_secs(1));
        state.backends[0].inflight.store(5, Ordering::SeqCst);
        assert_eq!(state.pick_backend(None), Some(1), "least-loaded backend wins");
        assert_eq!(state.pick_backend(Some(1)), Some(0), "exclude forces the other backend");
        state.on_backend_failure(1);
        state.on_backend_failure(1);
        state.on_backend_failure(1);
        assert_eq!(state.pick_backend(None), Some(0), "open breaker drops out of routing");
        assert_eq!(state.pick_backend(Some(0)), None, "no hedge target left");
    }

    #[test]
    fn breaker_success_resets_the_failure_count() {
        let state = test_state(&["a:1"], 3, Duration::from_secs(1));
        state.on_backend_failure(0);
        state.on_backend_failure(0);
        state.on_backend_success(0);
        state.on_backend_failure(0);
        state.on_backend_failure(0);
        assert_eq!(state.pick_backend(None), Some(0), "success must reset consecutive failures");
        state.on_backend_failure(0);
        assert_eq!(state.pick_backend(None), None);
    }

    #[test]
    fn metrics_schema_is_strict_and_labeled_per_backend() {
        let m = FleetMetrics::default();
        FleetMetrics::inc(&m.requests);
        FleetMetrics::inc(&m.hedges);
        m.observe_cell(1234);
        let backends = vec![
            BackendSnapshot {
                addr: "127.0.0.1:1".to_owned(),
                up: true,
                jobs: 3,
                failures: 0,
                breaker_state: 0,
            },
            BackendSnapshot {
                addr: "127.0.0.1:2".to_owned(),
                up: false,
                jobs: 1,
                failures: 4,
                breaker_state: 2,
            },
        ];
        let text = m.registry(12.5, &backends).render_prometheus();
        sms_metrics::prom::validate(&text).expect("strict parse");
        let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        assert_eq!(families, 20, "every family renders its header exactly once");
        assert!(text.contains("sms_fleet_backend_up{backend=\"127.0.0.1:1\"} 1"));
        assert!(text.contains("sms_fleet_backend_up{backend=\"127.0.0.1:2\"} 0"));
        assert!(text.contains("sms_fleet_backend_failures_total{backend=\"127.0.0.1:2\"} 4"));
        assert!(text.contains("sms_fleet_breaker_state{backend=\"127.0.0.1:1\"} 0"));
        assert!(text.contains("sms_fleet_breaker_state{backend=\"127.0.0.1:2\"} 2"));
        assert!(text.contains("sms_build_info{version=\""));
        assert!(text.contains("sms_fleet_uptime_seconds 12.5"));
    }
}
