//! Property tests: every stack configuration must behave as an exact LIFO
//! stack under arbitrary operation interleavings, for every lane, with
//! reallocation and flushing exercised by interleaved lane lifetimes.

use proptest::prelude::*;
use sms_gpu::SimStats;
use sms_rtunit::{MicroOp, SmsParams, StackConfig, WarpStacks};

fn arb_config() -> impl Strategy<Value = StackConfig> {
    prop_oneof![
        (1usize..=16).prop_map(|rb| StackConfig::Baseline { rb_entries: rb }),
        Just(StackConfig::FullOnChip),
        (1usize..=8, 0usize..=16, any::<bool>(), any::<bool>(), 0usize..=6, 0u8..=4).prop_map(
            |(rb, sh, sk, ra, borrow, flush)| {
                StackConfig::Sms(SmsParams {
                    rb_entries: rb,
                    sh_entries: sh,
                    skewed: sk,
                    realloc: ra,
                    borrow_limit: borrow,
                    flush_limit: flush,
                })
            }
        ),
    ]
}

/// An op stream: (lane, push?) — pops on empty lanes are skipped.
fn arb_ops() -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0usize..32, prop::bool::weighted(0.55)), 1..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lifo_exactness_under_interleaving(config in arb_config(), ops in arb_ops()) {
        let mut stacks = WarpStacks::new(&config, 0, 0);
        let mut reference: Vec<Vec<u32>> = vec![Vec::new(); 32];
        let mut stats = SimStats::default();
        let mut micro: Vec<MicroOp> = Vec::new();
        let mut next = 0u32;

        for (lane, push) in ops {
            if push || reference[lane].is_empty() {
                stacks.push(lane, next, &mut stats, &mut micro);
                reference[lane].push(next);
                next += 1;
            } else {
                let got = stacks.pop(lane, &mut stats, &mut micro);
                let expected = reference[lane].pop().unwrap();
                prop_assert_eq!(got, expected, "{} lane {}", config, lane);
                // NOTE: mark_done is terminal for a lane within one trace
                // (the RT unit resets stacks per trace request), so it is
                // exercised by `ra_capacity_invariants`, not here.
            }
            prop_assert_eq!(stacks.depth(lane), reference[lane].len());
        }
        // Drain everything and verify full content equality.
        for lane in 0..32 {
            let logical = stacks.logical_contents(lane);
            prop_assert_eq!(&logical, &reference[lane], "{} lane {}", config, lane);
            while let Some(expected) = reference[lane].pop() {
                let got = stacks.pop(lane, &mut stats, &mut micro);
                prop_assert_eq!(got, expected);
            }
            prop_assert!(stacks.is_empty(lane));
        }
    }

    #[test]
    fn micro_ops_follow_paper_sequences(ops in arb_ops()) {
        // Plain SMS (no RA): check every emitted sequence is one of the
        // legal §VI-A patterns.
        let config = StackConfig::Sms(SmsParams::default());
        let mut stacks = WarpStacks::new(&config, 0, 0);
        let mut depth = vec![0usize; 32];
        let mut stats = SimStats::default();
        let mut next = 0u32;
        use sms_mem::AccessKind::{Load, Store};
        use sms_rtunit::Space::{Global, Shared};

        for (lane, push) in ops {
            let mut micro: Vec<MicroOp> = Vec::new();
            if push || depth[lane] == 0 {
                stacks.push(lane, next, &mut stats, &mut micro);
                next += 1;
                depth[lane] += 1;
                let pattern: Vec<_> = micro.iter().map(|o| (o.space, o.kind)).collect();
                let legal: [&[_]; 3] = [
                    &[],                                            // RB had room
                    &[(Shared, Store)],                             // spill to SH
                    &[(Shared, Load), (Global, Store), (Shared, Store)], // both full
                ];
                prop_assert!(legal.contains(&pattern.as_slice()), "push: {pattern:?}");
            } else {
                stacks.pop(lane, &mut stats, &mut micro);
                depth[lane] -= 1;
                let pattern: Vec<_> = micro.iter().map(|o| (o.space, o.kind)).collect();
                let legal: [&[_]; 3] = [
                    &[],                                            // RB only
                    &[(Shared, Load)],                              // refill from SH
                    &[(Shared, Load), (Global, Load), (Shared, Store)], // cascade
                ];
                prop_assert!(legal.contains(&pattern.as_slice()), "pop: {pattern:?}");
            }
        }
    }

    #[test]
    fn ra_capacity_invariants(ops in arb_ops(), done_lanes in prop::collection::vec(0usize..32, 0..16)) {
        // With RA on, chains never exceed 1 + borrow_limit and borrowed
        // stacks are returned; total content is conserved.
        let p = SmsParams::default().with_skewed(true).with_realloc(true);
        let config = StackConfig::Sms(p);
        let mut stacks = WarpStacks::new(&config, 0, 0);
        let mut live = [true; 32];
        for lane in done_lanes {
            if live[lane] {
                stacks.mark_done(lane);
                live[lane] = false;
            }
        }
        let mut reference: Vec<Vec<u32>> = vec![Vec::new(); 32];
        let mut stats = SimStats::default();
        let mut micro = Vec::new();
        let mut next = 0u32;
        for (lane, push) in ops {
            if !live[lane] {
                continue;
            }
            if push || reference[lane].is_empty() {
                stacks.push(lane, next, &mut stats, &mut micro);
                reference[lane].push(next);
                next += 1;
            } else {
                let got = stacks.pop(lane, &mut stats, &mut micro);
                prop_assert_eq!(got, reference[lane].pop().unwrap());
            }
            prop_assert!(
                stacks.chain_len(lane) <= 1 + p.borrow_limit,
                "chain {} exceeds limit",
                stacks.chain_len(lane)
            );
            prop_assert_eq!(stacks.depth(lane), reference[lane].len());
        }
    }
}
