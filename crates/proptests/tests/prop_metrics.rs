//! Property tests for the `sms-metrics` histogram: the aggregation laws
//! the harness relies on (merging per-job histograms batch-wide must be
//! order-independent) and the accuracy contract of the bucket layout
//! (exact below `LINEAR_CUTOFF`, bounded relative error above).

use proptest::prelude::*;
use sms_metrics::Histogram;

/// Value mix matching real telemetry: mostly small (stack depths,
/// occupancies — the exact linear region) with occasional large outliers
/// (ray latencies — the log region).
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![4 => 0u64..64, 2 => 64u64..10_000, 1 => any::<u64>()],
        0..200,
    )
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative_and_associative(
        a in arb_values(), b in arb_values(), c in arb_values()
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must be associative");

        // Merging equals recording the concatenation directly.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    #[test]
    fn moments_match_naive_reference(values in arb_values()) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), values.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn buckets_partition_the_recorded_set(values in arb_values()) {
        let h = hist_of(&values);
        // Every bucket's count is the number of recorded values inside its
        // [lo, hi] range — buckets tile the value space without overlap.
        let mut total = 0u64;
        for (lo, hi, count) in h.buckets() {
            let expect = values.iter().filter(|&&v| lo <= v && v <= hi).count() as u64;
            prop_assert_eq!(count, expect, "bucket [{}, {}]", lo, hi);
            total += count;
        }
        prop_assert_eq!(total, h.count());
    }

    #[test]
    fn linear_region_is_value_exact(values in prop::collection::vec(0u64..64, 0..200)) {
        let h = hist_of(&values);
        for v in 0..64u64 {
            let expect = values.iter().filter(|&&x| x == v).count() as u64;
            prop_assert_eq!(h.count_at(v), expect);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(values in arb_values(), qs in prop::collection::vec(0.0f64..=1.0, 2..8)) {
        let h = hist_of(&values);
        let mut sorted = qs;
        sorted.sort_by(f64::total_cmp);
        let quantiles: Vec<u64> = sorted.iter().map(|&q| h.quantile(q)).collect();
        for w in quantiles.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile must be monotone: {:?}", quantiles);
        }
        prop_assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn median_matches_textbook_on_linear_data(values in prop::collection::vec(0u64..64, 1..200)) {
        let h = hist_of(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        // "Smallest value with cumulative count >= ceil(q*n)" — exact in
        // the unit-width linear region.
        let rank = (sorted.len() + 1) / 2; // ceil(n/2)
        prop_assert_eq!(h.quantile(0.5), sorted[rank - 1]);
        prop_assert_eq!(h.quantile(1.0), *sorted.last().unwrap());
    }

    #[test]
    fn quantile_never_under_reports_and_stays_in_bucket(
        values in arb_values(), q in 0.0f64..=1.0
    ) {
        prop_assume!(!values.is_empty());
        let h = hist_of(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let t = sorted[rank - 1]; // textbook quantile of the recorded set
        let r = h.quantile(q);
        // The representative is the upper bound of t's bucket clamped to
        // the observed max: never below the true quantile (the old lower
        // bound under-reported by up to 12.5%), never past its bucket.
        prop_assert!(r >= t, "quantile must not under-report: {} < {}", r, t);
        let (_, hi) = Histogram::bucket_bounds(Histogram::bucket_index(t));
        prop_assert!(r <= hi.min(h.max()), "quantile {} left t's bucket [..{}]", r, hi);
    }

    #[test]
    fn log_region_relative_error_is_bounded(values in prop::collection::vec(64u64..u64::MAX, 1..50)) {
        let h = hist_of(&values);
        // Each value lands in a bucket whose width is at most lo/8 — the
        // 1/SUB_BUCKETS relative-error contract of the log region.
        for (lo, hi, _) in h.buckets() {
            prop_assert!(hi.saturating_sub(lo).saturating_add(1) as f64 / lo as f64 <= 0.125 + 1e-12);
        }
    }

    #[test]
    fn summary_is_consistent(values in arb_values()) {
        let h = hist_of(&values);
        let s = h.summary();
        prop_assert_eq!(s.count, h.count());
        prop_assert_eq!(s.sum, u64::try_from(h.sum()).unwrap_or(u64::MAX));
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }
}
