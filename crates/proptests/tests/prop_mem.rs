//! Property tests for the memory models against simple oracles.

use proptest::prelude::*;
use sms_mem::{coalesce_lines, Cache, CacheConfig, SharedMem, SharedMemConfig};
use std::collections::VecDeque;

/// A trivially-correct LRU oracle.
struct LruOracle {
    lines: usize,
    order: VecDeque<u64>, // front = MRU
}

impl LruOracle {
    fn new(lines: usize) -> Self {
        LruOracle { lines, order: VecDeque::new() }
    }
    fn probe(&mut self, line: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|&l| l == line) {
            self.order.remove(pos);
            self.order.push_front(line);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, line: u64) {
        if !self.probe(line) {
            if self.order.len() == self.lines {
                self.order.pop_back();
            }
            self.order.push_front(line);
        }
    }
}

proptest! {
    #[test]
    fn fully_associative_cache_matches_lru_oracle(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..500)
    ) {
        // 8-line fully associative cache vs the oracle.
        let mut cache = Cache::new(CacheConfig { size_bytes: 8 * 128, assoc: 0, line_size: 128 });
        let mut oracle = LruOracle::new(8);
        for (line_idx, is_fill) in ops {
            let line = line_idx * 128;
            if is_fill {
                cache.fill(line);
                oracle.fill(line);
            } else {
                prop_assert_eq!(cache.probe(line), oracle.probe(line), "line {}", line_idx);
            }
        }
    }

    #[test]
    fn coalescing_is_exact_line_cover(
        accesses in prop::collection::vec((0u64..100_000, 1u32..300), 0..64)
    ) {
        let lines = coalesce_lines(accesses.iter().copied());
        // Sorted, unique, aligned.
        prop_assert!(lines.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(lines.iter().all(|l| l % 128 == 0));
        // Every accessed byte is covered.
        for (addr, size) in &accesses {
            for b in [*addr, addr + *size as u64 - 1] {
                let line = b & !127;
                prop_assert!(lines.binary_search(&line).is_ok(), "byte {b} uncovered");
            }
        }
        // No spurious lines: each returned line overlaps some access.
        for l in &lines {
            let covered = accesses
                .iter()
                .any(|(a, s)| *a < l + 128 && a + *s as u64 > *l);
            prop_assert!(covered, "line {l} covers no access");
        }
    }

    #[test]
    fn shared_memory_conflicts_bounded_and_skew_invariant(
        offsets in prop::collection::vec(0u64..256, 1..32)
    ) {
        // Conflicts never exceed the word count of the widest bank, and a
        // uniform shift of all addresses by a multiple of the full bank
        // width (128B) leaves the conflict count unchanged.
        let cfg = SharedMemConfig::default();
        let mk = |shift: u64| {
            let mut m = SharedMem::new(cfg);
            let acc: Vec<(u64, u32)> =
                offsets.iter().map(|o| (o * 8 + shift, 8u32)).collect();
            let done = m.access_warp(0, acc);
            (done, m.conflict_cycles)
        };
        let (done0, c0) = mk(0);
        let (done1, c1) = mk(128);
        prop_assert_eq!(c0, c1, "bank pattern is shift-periodic");
        prop_assert_eq!(done0, done1);
        let max_extra = (offsets.len() as u64 * 2 - 1) * cfg.conflict_replay_cycles;
        prop_assert!(c0 <= max_extra);
    }
}
