//! Property tests: BVH traversal (stack and restart variants, both split
//! methods) must agree with brute force on random scenes and rays.

use proptest::prelude::*;
use sms_bvh::builder::SplitMethod;
use sms_bvh::{intersect_nearest_restart, BuildParams, PrimHit, Primitive, WideBvh};
use sms_geom::{Aabb, Ray, Triangle, Vec3};

#[derive(Debug)]
struct Tri(Triangle);
impl Primitive for Tri {
    fn aabb(&self) -> Aabb {
        self.0.aabb()
    }
    fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
        self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
    }
}

fn v3(lo: f32, hi: f32) -> impl Strategy<Value = Vec3> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn tri() -> impl Strategy<Value = Tri> {
    (v3(-10.0, 10.0), v3(-3.0, 3.0), v3(-3.0, 3.0))
        .prop_map(|(c, a, b)| Tri(Triangle::new(c, c + a, c + b)))
}

fn brute(prims: &[Tri], ray: &Ray, t_min: f32, t_max: f32) -> Option<f32> {
    let mut best: Option<f32> = None;
    let mut limit = t_max;
    for p in prims {
        if let Some(h) = p.intersect(ray, t_min, limit) {
            limit = h.t;
            best = Some(h.t);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traversal_matches_brute_force(
        prims in prop::collection::vec(tri(), 1..150),
        origin in v3(-25.0, 25.0),
        dir in v3(-1.0, 1.0),
        width in 2usize..8,
        sah in any::<bool>(),
    ) {
        prop_assume!(dir.length() > 0.1);
        let params = BuildParams {
            branching_factor: width,
            split: if sah { SplitMethod::BinnedSah } else { SplitMethod::Median },
            ..BuildParams::default()
        };
        let bvh = WideBvh::build(&prims, &params);
        let ray = Ray::new(origin, dir);
        let expected = brute(&prims, &ray, 0.0, f32::INFINITY);
        let got = sms_bvh::intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ())
            .map(|h| h.t);
        match (expected, got) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}"),
            (a, b) => prop_assert!(false, "hit mismatch: {a:?} vs {b:?}"),
        }
        // Restart-trail traversal agrees too.
        let (rh, _) = intersect_nearest_restart(&bvh, &prims, &ray, 0.0, f32::INFINITY);
        match (expected, rh.map(|h| h.t)) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-3, "restart {a} vs {b}"),
            (a, b) => prop_assert!(false, "restart mismatch: {a:?} vs {b:?}"),
        }
        // Any-hit agrees with existence.
        let any = sms_bvh::intersect_any(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ());
        prop_assert_eq!(any, expected.is_some());
    }

    #[test]
    fn t_range_restriction_is_monotone(
        prims in prop::collection::vec(tri(), 1..80),
        origin in v3(-25.0, 25.0),
        dir in v3(-1.0, 1.0),
        cut in 0.1f32..40.0,
    ) {
        prop_assume!(dir.length() > 0.1);
        let bvh = WideBvh::build(&prims, &BuildParams::default());
        let ray = Ray::new(origin, dir);
        let unbounded =
            sms_bvh::intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ());
        let bounded = sms_bvh::intersect_nearest(&bvh, &prims, &ray, 0.0, cut, &mut ());
        match (unbounded, bounded) {
            // A bounded hit must equal the unbounded one (if within range).
            (Some(u), Some(b)) => {
                prop_assert!((u.t - b.t).abs() < 1e-3);
                prop_assert!(b.t <= cut + 1e-3);
            }
            (Some(u), None) => prop_assert!(u.t > cut - 1e-3, "lost an in-range hit"),
            (None, Some(_)) => prop_assert!(false, "bounded found what unbounded missed"),
            (None, None) => {}
        }
    }
}
