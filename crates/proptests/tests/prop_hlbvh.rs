//! Property tests: the HLBVH building blocks. Morton encoding must be a
//! bijection on the 10-bit lattice, the radix sort must agree with a
//! known-stable reference sort (order *and* tie order), and the full
//! builder must report every primitive hit that brute force finds.

use proptest::prelude::*;
use sms_bvh::{
    morton_decode, morton_encode, radix_sort_pairs, BuildParams, PrimHit, Primitive, WideBvh,
};
use sms_geom::{Aabb, Ray, Triangle, Vec3};

#[derive(Debug)]
struct Tri(Triangle);
impl Primitive for Tri {
    fn aabb(&self) -> Aabb {
        self.0.aabb()
    }
    fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
        self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
    }
}

fn v3(lo: f32, hi: f32) -> impl Strategy<Value = Vec3> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn tri() -> impl Strategy<Value = Tri> {
    (v3(-10.0, 10.0), v3(-3.0, 3.0), v3(-3.0, 3.0))
        .prop_map(|(c, a, b)| Tri(Triangle::new(c, c + a, c + b)))
}

fn brute(prims: &[Tri], ray: &Ray, t_min: f32, t_max: f32) -> Option<f32> {
    let mut best: Option<f32> = None;
    let mut limit = t_max;
    for p in prims {
        if let Some(h) = p.intersect(ray, t_min, limit) {
            limit = h.t;
            best = Some(h.t);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn morton_roundtrips_on_the_lattice(
        x in 0u32..1024, y in 0u32..1024, z in 0u32..1024,
    ) {
        let code = morton_encode(x, y, z);
        prop_assert!(code < 1 << 30, "code {code:#x} exceeds 30 bits");
        prop_assert_eq!(morton_decode(code), (x, y, z));
    }

    #[test]
    fn morton_is_injective(
        a in (0u32..1024, 0u32..1024, 0u32..1024),
        b in (0u32..1024, 0u32..1024, 0u32..1024),
    ) {
        prop_assert_eq!(
            morton_encode(a.0, a.1, a.2) == morton_encode(b.0, b.1, b.2),
            a == b
        );
    }

    #[test]
    fn radix_sort_is_sorted_and_stable(
        keys in prop::collection::vec(0u32..(1 << 30), 0..400),
        workers in 1usize..6,
    ) {
        // Payload = original position, so stability is observable: equal
        // keys must keep their input order, exactly like the std stable
        // sort the reference uses.
        let mut got: Vec<(u32, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let mut want = got.clone();
        radix_sort_pairs(&mut got, workers);
        want.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hlbvh_traversal_matches_brute_force(
        prims in prop::collection::vec(tri(), 1..150),
        origin in v3(-25.0, 25.0),
        dir in v3(-1.0, 1.0),
        workers in 1usize..5,
    ) {
        prop_assume!(dir.length() > 0.1);
        let bvh = WideBvh::build(&prims, &BuildParams::hlbvh(workers));
        let ray = Ray::new(origin, dir);
        let expected = brute(&prims, &ray, 0.0, f32::INFINITY);
        let got = sms_bvh::intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ())
            .map(|h| h.t);
        match (expected, got) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}"),
            (a, b) => prop_assert!(false, "hit mismatch: {a:?} vs {b:?}"),
        }
        let any = sms_bvh::intersect_any(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ());
        prop_assert_eq!(any, expected.is_some());
    }
}
