//! Property tests for the stack-elimination competitors: escape-index
//! (stackless) traversal must agree with brute force and with the stacked
//! drivers on random scenes, the predictor's speculative t_max priming
//! must never change a nearest-hit answer, and the direct-mapped
//! prediction table must behave exactly like its reference model
//! (tag-checked, last-writer-wins per index).

use proptest::prelude::*;
use sms_bvh::builder::SplitMethod;
use sms_bvh::{
    intersect_any_stackless, intersect_nearest_stackless, BuildParams, FlatBvh, PrimHit,
    Primitive, WideBvh,
};
use sms_geom::{Aabb, Ray, Triangle, Vec3};
use sms_rtunit::RayPredictor;
use std::collections::HashMap;

#[derive(Debug)]
struct Tri(Triangle);
impl Primitive for Tri {
    fn aabb(&self) -> Aabb {
        self.0.aabb()
    }
    fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
        self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
    }
}

fn v3(lo: f32, hi: f32) -> impl Strategy<Value = Vec3> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn tri() -> impl Strategy<Value = Tri> {
    (v3(-10.0, 10.0), v3(-3.0, 3.0), v3(-3.0, 3.0))
        .prop_map(|(c, a, b)| Tri(Triangle::new(c, c + a, c + b)))
}

fn brute(prims: &[Tri], ray: &Ray, t_min: f32, t_max: f32) -> Option<f32> {
    let mut best: Option<f32> = None;
    let mut limit = t_max;
    for p in prims {
        if let Some(h) = p.intersect(ray, t_min, limit) {
            limit = h.t;
            best = Some(h.t);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stackless_matches_brute_force_and_stacked(
        prims in prop::collection::vec(tri(), 1..150),
        origin in v3(-25.0, 25.0),
        dir in v3(-1.0, 1.0),
        width in 2usize..8,
        sah in any::<bool>(),
    ) {
        prop_assume!(dir.length() > 0.1);
        let params = BuildParams {
            branching_factor: width,
            split: if sah { SplitMethod::BinnedSah } else { SplitMethod::Median },
            ..BuildParams::default()
        };
        let flat = FlatBvh::from_wide(&WideBvh::build(&prims, &params));
        let ray = Ray::new(origin, dir);
        let expected = brute(&prims, &ray, 0.0, f32::INFINITY);
        let mut visits = 0u64;
        let got =
            intersect_nearest_stackless(&flat, &prims, &ray, 0.0, f32::INFINITY, Some(&mut visits))
                .map(|h| h.t);
        match (expected, got) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b),
            (a, b) => prop_assert!(false, "hit mismatch: {:?} vs {:?}", a, b),
        }
        prop_assert!(visits >= 1, "every walk visits at least the root");
        // Bit-exact agreement with the stacked driver over the same tree.
        let stacked = sms_bvh::intersect_nearest(&flat, &prims, &ray, 0.0, f32::INFINITY, &mut ())
            .map(|h| h.t.to_bits());
        prop_assert_eq!(got.map(f32::to_bits), stacked, "stackless vs stacked diverged");
        // Any-hit agrees with existence.
        let any = intersect_any_stackless(&flat, &prims, &ray, 0.0, f32::INFINITY, None);
        prop_assert_eq!(any, expected.is_some());
    }

    #[test]
    fn speculative_prime_preserves_the_nearest_hit(
        prims in prop::collection::vec(tri(), 1..100),
        origin in v3(-25.0, 25.0),
        dir in v3(-1.0, 1.0),
        probe in any::<prop::sample::Index>(),
    ) {
        prop_assume!(dir.length() > 0.1);
        let flat = FlatBvh::from_wide(&WideBvh::build(&prims, &BuildParams::default()));
        let ray = Ray::new(origin, dir);
        let full = sms_bvh::intersect_nearest(&flat, &prims, &ray, 0.0, f32::INFINITY, &mut ());
        // The predictor's fallback protocol: a speculative probe that hits
        // some primitive primes (best, t_max), then traversal restarts from
        // the root with the tightened interval. Whatever primitive the
        // probe picked, the final answer must equal the unprimed nearest.
        if let Some(h) = prims[probe.index(prims.len())].intersect(&ray, 0.0, f32::INFINITY) {
            let rest = sms_bvh::intersect_nearest(&flat, &prims, &ray, 0.0, h.t, &mut ());
            let primed_t = rest.map(|r| r.t).unwrap_or(h.t);
            prop_assert_eq!(
                Some(primed_t.to_bits()),
                full.map(|f| f.t.to_bits()),
                "priming with a probe hit changed the nearest-hit answer"
            );
        }
    }

    #[test]
    fn prediction_table_matches_reference_model(
        bits in 1u32..10,
        ops in prop::collection::vec((any::<u64>(), any::<u32>(), any::<bool>()), 0..200),
    ) {
        let mut table = RayPredictor::new(bits);
        // Reference: index -> (full-hash tag, leaf), last writer wins.
        let mut model: HashMap<u64, (u64, u32)> = HashMap::new();
        let mask = (1u64 << bits) - 1;
        for (hash, leaf, is_update) in ops {
            if is_update {
                table.update(hash, leaf);
                model.insert(hash & mask, (hash, leaf));
            } else {
                let want = match model.get(&(hash & mask)) {
                    Some(&(tag, l)) if tag == hash => Some(l),
                    _ => None, // tag mismatch: aliased index reads as miss
                };
                prop_assert_eq!(table.predict(hash), want);
            }
        }
    }

    #[test]
    fn quantized_hash_is_locality_sensitive(
        origin in v3(-10.0, 10.0),
        dir in v3(-1.0, 1.0),
    ) {
        prop_assume!(dir.length() > 0.1);
        let a = Ray::new(origin, dir);
        let h = RayPredictor::hash(&a);
        // The hash reads only quantized components, so it is a pure
        // function of them: re-deriving the ray from its own components
        // cannot change the hash.
        let b = Ray::new(origin, dir);
        prop_assert_eq!(h, RayPredictor::hash(&b));
    }
}
