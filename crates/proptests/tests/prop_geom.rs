//! Property-based tests for the geometry kernels.

use proptest::prelude::*;
use sms_geom::{Aabb, Ray, Sphere, Triangle, Vec3};

fn finite_f32(lo: f32, hi: f32) -> impl Strategy<Value = f32> {
    (lo..hi).prop_filter("finite", |v: &f32| v.is_finite())
}

fn vec3(lo: f32, hi: f32) -> impl Strategy<Value = Vec3> {
    (finite_f32(lo, hi), finite_f32(lo, hi), finite_f32(lo, hi))
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn dir() -> impl Strategy<Value = Vec3> {
    vec3(-1.0, 1.0).prop_filter("nonzero", |v| v.length() > 0.1)
}

proptest! {
    #[test]
    fn aabb_union_is_commutative_and_contains(a_min in vec3(-100.0, 100.0),
                                              a_ext in vec3(0.0, 50.0),
                                              b_min in vec3(-100.0, 100.0),
                                              b_ext in vec3(0.0, 50.0)) {
        let a = Aabb::new(a_min, a_min + a_ext);
        let b = Aabb::new(b_min, b_min + b_ext);
        let u1 = Aabb::union(&a, &b);
        let u2 = Aabb::union(&b, &a);
        prop_assert_eq!(u1, u2);
        prop_assert!(u1.contains(&a));
        prop_assert!(u1.contains(&b));
        // Union never shrinks surface area below either input.
        prop_assert!(u1.surface_area() >= a.surface_area() * 0.999);
        prop_assert!(u1.surface_area() >= b.surface_area() * 0.999);
    }

    #[test]
    fn ray_hits_box_containing_origin(bmin in vec3(-10.0, 0.0),
                                      ext in vec3(0.5, 5.0),
                                      d in dir()) {
        let b = Aabb::new(bmin, bmin + ext);
        let r = Ray::new(b.centroid(), d);
        prop_assert!(b.intersect(&r, 0.0, f32::INFINITY).is_some());
    }

    #[test]
    fn ray_toward_box_center_hits(bmin in vec3(-10.0, 10.0),
                                  ext in vec3(0.5, 5.0),
                                  origin in vec3(-50.0, 50.0)) {
        let b = Aabb::new(bmin, bmin + ext);
        let c = b.centroid();
        prop_assume!((c - origin).length() > 0.1);
        let r = Ray::new(origin, c - origin);
        prop_assert!(b.intersect(&r, 0.0, f32::INFINITY).is_some());
    }

    #[test]
    fn triangle_hit_point_inside_its_aabb(v0 in vec3(-5.0, 5.0),
                                          v1 in vec3(-5.0, 5.0),
                                          v2 in vec3(-5.0, 5.0),
                                          origin in vec3(-20.0, 20.0)) {
        let t = Triangle::new(v0, v1, v2);
        prop_assume!(t.area() > 1e-3);
        let target = t.centroid();
        prop_assume!((target - origin).length() > 0.1);
        let r = Ray::new(origin, target - origin);
        if let Some(h) = t.intersect(&r, 0.0, f32::INFINITY) {
            let p = r.at(h.t);
            // Hit point lies within a slightly padded triangle AABB.
            let mut padded = t.aabb();
            padded.grow_point(padded.min - Vec3::splat(1e-2));
            padded.grow_point(padded.max + Vec3::splat(1e-2));
            prop_assert!(padded.contains_point(p));
            prop_assert!(h.u >= 0.0 && h.v >= 0.0 && h.u + h.v <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn triangle_hit_implies_aabb_hit(v0 in vec3(-5.0, 5.0),
                                     v1 in vec3(-5.0, 5.0),
                                     v2 in vec3(-5.0, 5.0),
                                     origin in vec3(-20.0, 20.0),
                                     d in dir()) {
        let t = Triangle::new(v0, v1, v2);
        prop_assume!(t.area() > 1e-3);
        let r = Ray::new(origin, d);
        if t.intersect(&r, 0.0, f32::INFINITY).is_some() {
            // Conservativeness: the AABB test can never prune a real hit.
            prop_assert!(t.aabb().intersect(&r, 0.0, f32::INFINITY).is_some());
        }
    }

    #[test]
    fn sphere_hit_point_on_surface(center in vec3(-10.0, 10.0),
                                   radius in finite_f32(0.1, 4.0),
                                   origin in vec3(-30.0, 30.0),
                                   d in dir()) {
        let s = Sphere::new(center, radius);
        let r = Ray::new(origin, d);
        if let Some(t) = s.intersect(&r, 0.0, f32::INFINITY) {
            let p = r.at(t);
            let dist = (p - center).length();
            prop_assert!((dist - radius).abs() < 1e-2,
                         "hit point {dist} vs radius {radius}");
            prop_assert!(s.aabb().intersect(&r, 0.0, f32::INFINITY).is_some());
        }
    }

    #[test]
    fn normalized_vectors_unit_length(v in dir()) {
        prop_assert!((v.normalized().length() - 1.0).abs() < 1e-5);
    }
}
