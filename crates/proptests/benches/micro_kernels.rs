//! Criterion micro-benchmarks of the simulator's own hot kernels:
//! intersection tests, BVH construction, cache model, shared-memory bank
//! model, and stack-manager operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sms_sim::bvh::{BuildParams, WideBvh};
use sms_sim::geom::{Aabb, DeterministicRng, Ray, SplitMix64, Triangle, Vec3};
use sms_sim::gpu::SimStats;
use sms_sim::mem::{Cache, CacheConfig, SharedMem, SharedMemConfig};
use sms_sim::rtunit::{StackConfig, WarpStacks};
use sms_sim::scene::{Scene, SceneId};
use std::hint::black_box;

fn rays(n: usize, seed: u64) -> Vec<Ray> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| Ray::new(rng.unit_vector() * 30.0, rng.unit_vector())).collect()
}

fn bench_intersections(c: &mut Criterion) {
    let tri = Triangle::new(
        Vec3::new(-1.0, -1.0, 5.0),
        Vec3::new(1.0, -1.0, 5.0),
        Vec3::new(0.0, 1.0, 5.0),
    );
    let aabb = Aabb::new(Vec3::new(-1.0, -1.0, 4.0), Vec3::new(1.0, 1.0, 6.0));
    let rs = rays(1024, 1);
    c.bench_function("ray_triangle_1k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for r in &rs {
                if tri.intersect(black_box(r), 0.0, f32::INFINITY).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    c.bench_function("ray_aabb_1k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for r in &rs {
                if aabb.intersect(black_box(r), 0.0, f32::INFINITY).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_bvh(c: &mut Criterion) {
    let scene = Scene::build(SceneId::Bunny);
    c.bench_function("bvh6_build_bunny", |b| {
        b.iter(|| black_box(WideBvh::build(&scene.prims, &BuildParams::default())))
    });
    let bvh = WideBvh::build(&scene.prims, &BuildParams::default());
    let rs = rays(256, 2);
    c.bench_function("bvh6_traverse_256", |b| {
        b.iter(|| {
            let mut hits = 0;
            for r in &rs {
                if sms_sim::bvh::intersect_nearest(
                    &bvh,
                    &scene.prims,
                    r,
                    0.0,
                    f32::INFINITY,
                    &mut (),
                )
                .is_some()
                {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_cache_probe_fill", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::l1_default()),
            |mut cache| {
                for i in 0..2048u64 {
                    let line = (i * 7919) % 4096 * 128;
                    if !cache.probe(line) {
                        cache.fill(line);
                    }
                }
                black_box(cache)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_shared(c: &mut Criterion) {
    c.bench_function("shared_warp_access", |b| {
        b.iter_batched(
            || SharedMem::new(SharedMemConfig::default()),
            |mut sh| {
                let mut t = 0;
                for round in 0..64u64 {
                    let accesses: Vec<(u64, u32)> =
                        (0..32).map(|l| (l * 64 + round * 8, 8u32)).collect();
                    t = sh.access_warp(t, accesses);
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_stacks(c: &mut Criterion) {
    for config in [StackConfig::baseline8(), StackConfig::sms_default()] {
        c.bench_function(&format!("stack_push_pop_{}", config.label()), |b| {
            b.iter_batched(
                || WarpStacks::new(&config, 0, 0),
                |mut stacks| {
                    let mut stats = SimStats::default();
                    let mut ops = Vec::new();
                    for lane in 0..32 {
                        for i in 0..24 {
                            stacks.push(lane, i, &mut stats, &mut ops);
                        }
                        while !stacks.is_empty(lane) {
                            black_box(stacks.pop(lane, &mut stats, &mut ops));
                        }
                        ops.clear();
                    }
                    black_box(stats)
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_intersections, bench_bvh, bench_cache, bench_shared, bench_stacks
);
criterion_main!(kernels);
