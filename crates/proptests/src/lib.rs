//! Opt-in, registry-dependent test host.
//!
//! This crate intentionally has no library code: it exists to host the
//! `proptest` suites under `tests/` and the criterion micro-benches under
//! `benches/`, which need crates.io access and therefore live outside the
//! hermetic root workspace (see the root `Cargo.toml`).
