//! Fig. 13 — IPC improvements of the SMS architecture per scene:
//! `+SH_8`, `+SK`, `+RA`, against `RB_FULL`, normalized to the `RB_8`
//! baseline.
//!
//! Paper reference (averages): +SH_8 +15.1%, +SK +19.4%, +RA +23.2%,
//! FULL +25.3%.

use sms_bench::{fmt_improvement, print_normalized_ipc, run_matrix, setup};
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, scenes, render) = setup("Fig. 13", "IPC improvements of SMS (SH_8 / +SK / +RA)");
    let configs = [
        StackConfig::baseline8(),
        StackConfig::Sms(SmsParams::default()), // +SH_8
        StackConfig::Sms(SmsParams::default().with_skewed(true)), // +SK
        StackConfig::sms_default(),             // +SK +RA
        StackConfig::FullOnChip,
    ];
    let results = run_matrix(&harness, &scenes, &configs, &render);
    let gmeans = print_normalized_ipc(&scenes, &results);

    println!("paper:  +SH_8 +15.1%   +SK +19.4%   +RA (full SMS) +23.2%   FULL +25.3%");
    println!(
        "ours:   +SH_8 {}   +SK {}   +RA (full SMS) {}   FULL {}",
        fmt_improvement(gmeans[1]),
        fmt_improvement(gmeans[2]),
        fmt_improvement(gmeans[3]),
        fmt_improvement(gmeans[4]),
    );
    println!(
        "\nexpected shape: SMS captures most of the full-stack headroom; deep or \
         leaf-heavy scenes (SHIP, CHSNT, PARTY, ROBOT) gain most; shallow ones \
         (REF, WKND) least (paper §VII-B)."
    );
}
