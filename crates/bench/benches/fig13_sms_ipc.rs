//! Fig. 13 — IPC improvements of the SMS architecture per scene:
//! `+SH_8`, `+SK`, `+RA`, against `RB_FULL`, normalized to the `RB_8`
//! baseline — plus the two traversal-changing competitors (`SL`
//! stackless restart-from-escape, `PRED_12` hash-predicted leaf probe)
//! on the same normalization.
//!
//! Paper reference (averages): +SH_8 +15.1%, +SK +19.4%, +RA +23.2%,
//! FULL +25.3%. The competitors have no paper row: their columns show
//! how much of SMS's win a stack-*elimination* strategy recovers.

use sms_bench::{competitor_configs, fmt_improvement, print_normalized_ipc, run_matrix, setup};
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, scenes, render) = setup("Fig. 13", "IPC improvements of SMS (SH_8 / +SK / +RA)");
    let mut configs = vec![
        StackConfig::baseline8(),
        StackConfig::Sms(SmsParams::default()), // +SH_8
        StackConfig::Sms(SmsParams::default().with_skewed(true)), // +SK
        StackConfig::sms_default(),             // +SK +RA
        StackConfig::FullOnChip,
    ];
    configs.extend(competitor_configs()); // SL / PRED_* (SMS_STACKLESS, SMS_PREDICT)
    let results = run_matrix(&harness, &scenes, &configs, &render);
    let gmeans = print_normalized_ipc(&scenes, &results);

    println!("paper:  +SH_8 +15.1%   +SK +19.4%   +RA (full SMS) +23.2%   FULL +25.3%");
    let mut ours = format!(
        "ours:   +SH_8 {}   +SK {}   +RA (full SMS) {}   FULL {}",
        fmt_improvement(gmeans[1]),
        fmt_improvement(gmeans[2]),
        fmt_improvement(gmeans[3]),
        fmt_improvement(gmeans[4]),
    );
    for (c, g) in configs.iter().zip(&gmeans).skip(5) {
        ours.push_str(&format!("   {} {}", c.label(), fmt_improvement(*g)));
    }
    println!("{ours}");
    println!(
        "\nexpected shape: SMS captures most of the full-stack headroom; deep or \
         leaf-heavy scenes (SHIP, CHSNT, PARTY, ROBOT) gain most; shallow ones \
         (REF, WKND) least (paper §VII-B)."
    );
}
