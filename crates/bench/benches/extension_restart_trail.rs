//! Extension (§VIII-A) — stackless restart-trail traversal vs traversal
//! stacks.
//!
//! The paper positions stackless traversal as orthogonal to SMS: it removes
//! stack memory traffic entirely but pays *extra node visits* on every
//! backtrack (restarting from the root). This harness quantifies that
//! computational overhead on our scenes: the node-visit inflation of the
//! restart trail is the work SMS would save if the two were combined
//! (restarts only past the SH stack), as the paper suggests.

use sms_bench::{fmt_pct, setup, Table};
use sms_sim::bvh::traverse::{node_step, NodeStep};
use sms_sim::bvh::{intersect_nearest_restart, WideBvh};
use sms_sim::render::PreparedScene;
use sms_sim::scene::ScenePrimitive;

/// Stack traversal with an exact node-visit counter (same order as
/// `intersect_nearest`).
fn count_stack_visits(bvh: &WideBvh, prims: &[ScenePrimitive], ray: &sms_sim::geom::Ray) -> u64 {
    let mut visits = 0u64;
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    let mut current = Some(0u32);
    let mut limit = f32::INFINITY;
    while let Some(node) = current {
        visits += 1;
        match node_step(bvh, prims, ray, node, 0.0, limit) {
            NodeStep::Inner(hits) => {
                if hits.is_empty() {
                    current = stack.pop();
                } else {
                    for i in (1..hits.len()).rev() {
                        stack.push(hits.get(i).1);
                    }
                    current = Some(hits.get(0).1);
                }
            }
            NodeStep::Leaf(hit) => {
                if let Some(h) = hit {
                    limit = limit.min(h.t);
                }
                current = stack.pop();
            }
        }
    }
    visits
}

fn main() {
    let (_, mut scenes, render) = setup("Extension", "restart-trail (stackless) visit overhead");
    if scenes.len() > 8 {
        scenes.truncate(8);
    }

    let mut table =
        Table::new(["scene", "visits (stack)", "visits (restart)", "restarts", "visit inflation"]);
    for &id in &scenes {
        eprint!("  {id} ...");
        let prepared = PreparedScene::build(id, &render);
        let cam = &prepared.scene.camera;
        let mut stack_visits = 0u64;
        let mut restart_visits = 0u64;
        let mut restarts = 0u64;
        for py in 0..cam.height {
            for px in 0..cam.width {
                let ray = cam.primary_ray(px, py, 0);
                stack_visits += count_stack_visits(&prepared.bvh, prepared.prims(), &ray);
                let (_, s) = intersect_nearest_restart(
                    &prepared.bvh,
                    prepared.prims(),
                    &ray,
                    0.0,
                    f32::INFINITY,
                );
                restart_visits += s.node_visits;
                restarts += s.restarts;
            }
        }
        eprintln!(" done");
        let inflation = if stack_visits > 0 {
            restart_visits as f64 / stack_visits.max(1) as f64 - 1.0
        } else {
            0.0
        };
        table.row([
            id.name().to_owned(),
            stack_visits.to_string(),
            restart_visits.to_string(),
            restarts.to_string(),
            fmt_pct(inflation),
        ]);
    }
    println!("{table}");
    println!(
        "interpretation: the restart trail trades all stack traffic for this much \
         extra traversal work; combining it with an SH stack (SMS) would confine \
         restarts to overflows past the shared-memory level (paper §VIII-A)."
    );
}
