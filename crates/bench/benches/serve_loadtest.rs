//! Serving-path load test: concurrent clients against an in-process
//! `sms-serve`, cold cache then warm.
//!
//! This measures the *serving layer* (HTTP framing, admission,
//! single-flight, shared cache), not the simulator — the cold pass pays
//! for real runs once, coalesced across clients; the warm pass must be
//! pure cache hits. At least four clients sweep the same grid
//! concurrently in each phase and every request's wall clock is recorded,
//! so the numbers surface contention in the accept loop or the
//! single-flight table, not just simulator throughput.
//!
//! Appends one timestamped entry to `BENCH_serve.json` (append-only JSON
//! array, same history format as `BENCH_core.json`; override with
//! `SMS_BENCH_SERVE_OUT`). Knobs: `SMS_LOADTEST_CLIENTS` (default 4),
//! `SMS_LOADTEST_ROUNDS` (sweeps per client per phase, default 3).

use sms_harness::json::Json;
use sms_serve::{Client, ClientConfig, ServeConfig, Server};
use std::time::Instant;

const SCENES: [&str; 2] = ["WKND", "BUNNY"];
const CONFIGS: [&str; 2] = ["RB_8", "RB_8+SH_8+SK+RA"];
const RENDER: &str = "fast";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Nearest-rank percentile over an already-sorted slice.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[derive(Debug, Default)]
struct Phase {
    durations_us: Vec<u64>,
    wall_us: u64,
    hits: u64,
    misses: u64,
    shared: u64,
    failed: u64,
}

impl Phase {
    fn req_per_sec(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.durations_us.len() as f64 / (self.wall_us as f64 / 1e6)
    }

    fn to_json(&self, name: &str) -> Json {
        let own = |s: &str| s.to_owned();
        let mut sorted = self.durations_us.clone();
        sorted.sort_unstable();
        Json::Obj(vec![
            (own("phase"), Json::Str(name.to_owned())),
            (own("requests"), Json::U64(sorted.len() as u64)),
            (own("wall_us"), Json::U64(self.wall_us)),
            (own("req_per_sec"), Json::F64(self.req_per_sec())),
            (own("p50_us"), Json::U64(pct(&sorted, 0.50))),
            (own("p95_us"), Json::U64(pct(&sorted, 0.95))),
            (own("max_us"), Json::U64(sorted.last().copied().unwrap_or(0))),
            (own("cache_hits"), Json::U64(self.hits)),
            (own("cache_misses"), Json::U64(self.misses)),
            (own("singleflight_shared"), Json::U64(self.shared)),
            (own("failed"), Json::U64(self.failed)),
        ])
    }
}

/// `clients` threads each sweep the grid `rounds` times, concurrently.
fn run_phase(addr: &str, clients: usize, rounds: usize) -> Phase {
    let t0 = Instant::now();
    let mut phase = Phase::default();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let client = Client::with_config(ClientConfig {
                        addr: addr.to_owned(),
                        ..ClientConfig::default()
                    });
                    let mut local = Phase::default();
                    for _ in 0..rounds {
                        let r0 = Instant::now();
                        let outcome = client
                            .sweep(&SCENES, &CONFIGS, RENDER)
                            .unwrap_or_else(|e| panic!("sweep failed: {e:?}"));
                        local.durations_us.push(r0.elapsed().as_micros() as u64);
                        for rec in &outcome.records {
                            match rec.cache.as_str() {
                                "hit" => local.hits += 1,
                                "miss" => local.misses += 1,
                                "shared" => local.shared += 1,
                                other => panic!("unknown cache tier `{other}`"),
                            }
                            if rec.outcome.is_err() {
                                local.failed += 1;
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            let local = w.join().expect("client thread panicked");
            phase.durations_us.extend(local.durations_us);
            phase.hits += local.hits;
            phase.misses += local.misses;
            phase.shared += local.shared;
            phase.failed += local.failed;
        }
    });
    phase.wall_us = t0.elapsed().as_micros() as u64;
    phase
}

fn main() {
    let clients = env_usize("SMS_LOADTEST_CLIENTS", 4).max(4);
    let rounds = env_usize("SMS_LOADTEST_ROUNDS", 3);

    // A fresh cache directory guarantees the first phase is genuinely cold.
    let cache_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("sms-loadtest-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        cache_dir: Some(cache_dir.clone()),
        journal_path: None,
        ..ServeConfig::default()
    };
    let (handle, join) = Server::spawn(config).expect("bind loadtest server");
    let addr = handle.addr().to_string();

    println!("=== serve_loadtest: {clients} clients x {rounds} rounds, cold then warm ===");
    println!(
        "grid: {} scenes x {} configs ({RENDER} mode), server at {addr}\n",
        SCENES.len(),
        CONFIGS.len()
    );

    let cold = run_phase(&addr, clients, rounds);
    let warm = run_phase(&addr, clients, rounds);

    handle.request_drain();
    join.join().expect("server thread panicked").expect("server accept loop failed");
    let _ = std::fs::remove_dir_all(&cache_dir);

    for (name, phase) in [("cold", &cold), ("warm", &warm)] {
        let mut sorted = phase.durations_us.clone();
        sorted.sort_unstable();
        println!(
            "{name}: {} reqs in {:.2}s  ({:.1} req/s)  p50 {}us  p95 {}us  \
             hit/miss/shared/failed {}/{}/{}/{}",
            sorted.len(),
            phase.wall_us as f64 / 1e6,
            phase.req_per_sec(),
            pct(&sorted, 0.50),
            pct(&sorted, 0.95),
            phase.hits,
            phase.misses,
            phase.shared,
            phase.failed,
        );
    }

    // The serving contract this bench exists to defend: the cold pass runs
    // each unique cell at most once (everything else is shared or a hit),
    // and the warm pass never touches the simulator.
    let unique = (SCENES.len() * CONFIGS.len()) as u64;
    assert_eq!(cold.failed + warm.failed, 0, "no served job may fail");
    assert!(
        cold.misses <= unique,
        "cold pass ran {} simulations for {unique} unique cells — single-flight broken",
        cold.misses
    );
    assert_eq!(warm.misses, 0, "warm pass must be pure cache hits");
    assert_eq!(warm.shared, 0, "warm pass must not need single-flight");

    let own = |s: &str| s.to_owned();
    let doc = Json::Obj(vec![
        (own("bench"), Json::Str(own("serve_loadtest"))),
        (own("timestamp"), Json::U64(unix_timestamp())),
        (own("render"), Json::Str(own(RENDER))),
        (own("clients"), Json::U64(clients as u64)),
        (own("rounds"), Json::U64(rounds as u64)),
        (own("jobs_per_sweep"), Json::U64(unique)),
        (own("phases"), Json::Arr(vec![cold.to_json("cold"), warm.to_json("warm")])),
    ]);
    // `cargo bench` runs with the package dir as cwd; the history file
    // lives at the repo root next to BENCH_core.json.
    let out = std::env::var("SMS_BENCH_SERVE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_owned()
    });
    let mut history = sms_bench::load_bench_history(&out);
    history.push(doc);
    std::fs::write(&out, format!("{}\n", Json::Arr(history))).expect("write benchmark output");
    println!("\nappended entry to {out}");
}
