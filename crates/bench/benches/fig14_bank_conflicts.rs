//! Fig. 14 — effect of skewed bank access on shared-memory conflict delay.
//!
//! Compares total bank-conflict delay cycles of `RB_8+SH_8` before and
//! after enabling the skewed mapping. Paper reference: −27.3% delay cycles
//! on average.

use sms_bench::{geomean, run_matrix, setup, Table};
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, scenes, render) = setup("Fig. 14", "bank-conflict delay cycles, SH_8 vs SH_8+SK");
    let configs = [
        StackConfig::Sms(SmsParams::default()),
        StackConfig::Sms(SmsParams::default().with_skewed(true)),
    ];
    let results = run_matrix(&harness, &scenes, &configs, &render);

    let mut table = Table::new(["scene", "delay (SH_8)", "delay (SH_8+SK)", "reduction"]);
    let mut keep = Vec::new();
    for (i, id) in scenes.iter().enumerate() {
        let before = results[i][0].stats.mem.bank_conflict_cycles;
        let after = results[i][1].stats.mem.bank_conflict_cycles;
        let red = if before > 0 {
            let r = 1.0 - after as f64 / before as f64;
            keep.push((after as f64 + 1.0) / (before as f64 + 1.0));
            format!("-{:.1}%", r * 100.0)
        } else {
            "n/a (no conflicts)".to_owned()
        };
        table.row([id.name().to_owned(), before.to_string(), after.to_string(), red]);
    }
    println!("{table}");
    if !keep.is_empty() {
        println!(
            "gmean delay-cycle reduction: -{:.1}%   (paper: -27.3%)",
            (1.0 - geomean(&keep)) * 100.0
        );
    }
}
