//! Fig. 6a — IPC with varying baseline RB-stack sizes, normalized to RB_8.
//!
//! Paper reference: RB_4 -18.4%, RB_16 +19.9%, RB_32 +25.2%, with marginal
//! gains beyond 32 entries.

use sms_bench::{fmt_improvement, print_normalized_ipc, run_matrix, setup};
use sms_sim::rtunit::StackConfig;

fn main() {
    let (harness, scenes, render) =
        setup("Fig. 6a", "IPC vs RB stack size (baseline architecture)");
    let configs = [
        StackConfig::baseline8(), // baseline column first
        StackConfig::Baseline { rb_entries: 4 },
        StackConfig::Baseline { rb_entries: 16 },
        StackConfig::Baseline { rb_entries: 32 },
        StackConfig::Baseline { rb_entries: 64 },
        StackConfig::FullOnChip,
    ];
    let results = run_matrix(&harness, &scenes, &configs, &render);
    let gmeans = print_normalized_ipc(&scenes, &results);

    println!("paper:  RB_4 -18.4%   RB_16 +19.9%   RB_32 +25.2%   (beyond 32: marginal)");
    println!(
        "ours:   RB_4 {}   RB_16 {}   RB_32 {}   RB_64 {}   FULL {}",
        fmt_improvement(gmeans[1]),
        fmt_improvement(gmeans[2]),
        fmt_improvement(gmeans[3]),
        fmt_improvement(gmeans[4]),
        fmt_improvement(gmeans[5]),
    );
}
