//! Fig. 10 — per-thread traversal-stack depth traces for two PARTY warps.
//!
//! The paper plots stack depth (colour) against stack-access index (x) for
//! each thread (y) of two warps, showing (1) threads finish traversal at
//! different times and (2) a few threads need much deeper stacks — the two
//! observations motivating dynamic intra-warp reallocation.
//!
//! This harness prints a per-thread summary and writes the full series to
//! `target/fig10_traces.csv` for plotting.

use sms_bench::Table;
use sms_sim::config::{RenderConfig, SimConfig};
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;

fn main() {
    let render = RenderConfig::from_env();
    println!("=== Fig. 10: per-thread stack depth traces (PARTY, 2 warps) ===\n");
    let prepared = PreparedScene::build(SceneId::Party, &render);
    let sim =
        sms_sim::GpuSim::new(&prepared, SimConfig::with_stack(StackConfig::FullOnChip, render))
            .trace_warps(2)
            .run();

    // Summarize per thread: accesses until done, max depth.
    let mut table = Table::new(["warp", "lane", "stack accesses", "max depth"]);
    for warp in 0..2u32 {
        for lane in 0..32u8 {
            let mut accesses = 0u32;
            let mut max_depth = 0u16;
            for &(w, l, idx, d) in &sim.thread_traces {
                if w == warp && l == lane {
                    accesses = accesses.max(idx + 1);
                    max_depth = max_depth.max(d);
                }
            }
            table.row([
                warp.to_string(),
                lane.to_string(),
                accesses.to_string(),
                max_depth.to_string(),
            ]);
        }
    }
    println!("{table}");

    let (min_acc, max_acc) = (0..64)
        .map(|t| {
            let (w, l) = ((t / 32) as u32, (t % 32) as u8);
            sim.thread_traces.iter().filter(|(sw, sl, _, _)| *sw == w && *sl == l).count()
        })
        .fold((usize::MAX, 0), |(lo, hi), n| (lo.min(n), hi.max(n)));
    println!(
        "observation 1 (divergent completion): accesses per thread range {min_acc}..{max_acc}"
    );
    let deep = sim.thread_traces.iter().filter(|(_, _, _, d)| *d > 8).count();
    println!("observation 2 (divergent depth): {deep} accesses exceeded the 8-entry RB stack");

    let mut csv = sms_metrics::Table::new(["warp", "lane", "access_index", "depth"]);
    for (w, l, i, d) in &sim.thread_traces {
        csv.row([w.to_string(), l.to_string(), i.to_string(), d.to_string()]);
    }
    let path = std::path::Path::new("target/fig10_traces.csv");
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(path, csv.to_csv()).expect("write csv");
    println!("full series written to {}", path.display());
}
