//! Table II — benchmark scenes: triangle counts and BVH sizes.
//!
//! Our procedural stand-ins scale the paper's triangle counts down (about
//! 1/100; small scenes less) while preserving the relative ordering; the
//! "paper" columns print the original Table II values for comparison.

use sms_bench::{Harness, Table};
use sms_sim::bvh::BvhStats;
use sms_sim::config::RenderConfig;
use sms_sim::scene::SceneId;

/// Table II reference values: (triangles, BVH MB).
fn paper_row(id: SceneId) -> (&'static str, f64) {
    match id {
        SceneId::Wknd => ("0", 0.2),
        SceneId::Sprng => ("1.9M", 178.0),
        SceneId::Fox => ("1.6M", 648.5),
        SceneId::Lands => ("3.3M", 303.5),
        SceneId::Crnvl => ("449.6K", 60.7),
        SceneId::Spnza => ("262.3K", 22.8),
        SceneId::Bath => ("423.6K", 112.8),
        SceneId::Robot => ("20.6M", 1869.0),
        SceneId::Car => ("12.7M", 1328.2),
        SceneId::Party => ("1.7M", 156.1),
        SceneId::Frst => ("4.2M", 380.5),
        SceneId::Bunny => ("144.1K", 13.2),
        SceneId::Ship => ("6.3K", 0.5),
        SceneId::Ref => ("448.9K", 40.4),
        SceneId::Chsnt => ("313.2K", 28.3),
        SceneId::Park => ("6.0M", 542.5),
    }
}

fn main() {
    println!("=== Table II: Benchmark scenes ===\n");
    let mut table = Table::new([
        "scene",
        "# tris (ours)",
        "# tris (paper)",
        "BVH MB (ours)",
        "BVH MB (paper)",
        "nodes",
        "depth",
    ]);
    // Scene + BVH construction fan out across the harness's worker pool
    // (the camera resolution the render config picks is irrelevant here).
    let harness = Harness::from_env();
    let prepared = harness.prepare_scenes(&SceneId::ALL, &RenderConfig::fast());
    for (id, p) in SceneId::ALL.into_iter().zip(&prepared) {
        let stats = BvhStats::measure(&p.bvh);
        let (ptris, pmb) = paper_row(id);
        table.row([
            id.name().to_owned(),
            p.scene.triangle_count().to_string(),
            ptris.to_owned(),
            format!("{:.2}", stats.size_mb()),
            format!("{pmb:.1}"),
            stats.nodes.to_string(),
            stats.depth.to_string(),
        ]);
    }
    println!("{table}");
    println!("(ours/paper triangle ratios are the documented ~1/100 scaling; see DESIGN.md)");
}
