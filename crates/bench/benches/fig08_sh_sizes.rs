//! Fig. 8 — IPC with different L1D/shared-memory splits: `RB_8 + SH_M`
//! (no SK/RA) against `RB_FULL`, normalized to `RB_8`.
//!
//! Shared-memory bytes are carved out of the unified 64KB array, so a
//! larger SH stack means a smaller L1D — exactly the paper's trade.
//! Paper reference: SH_4 +11.0%, SH_8 +17.4%, SH_16 +21.2%, FULL +25.3%.

use sms_bench::{fmt_improvement, print_normalized_ipc, run_matrix, setup};
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, scenes, render) = setup("Fig. 8", "IPC of RB_8+SH_M splits vs full stack");
    let sh = |m: usize| StackConfig::Sms(SmsParams { sh_entries: m, ..SmsParams::default() });
    let configs = [StackConfig::baseline8(), sh(4), sh(8), sh(16), StackConfig::FullOnChip];
    let results = run_matrix(&harness, &scenes, &configs, &render);
    let gmeans = print_normalized_ipc(&scenes, &results);

    println!("paper:  +SH_4 +11.0%   +SH_8 +17.4%   +SH_16 +21.2%   FULL +25.3%");
    println!(
        "ours:   +SH_4 {}   +SH_8 {}   +SH_16 {}   FULL {}",
        fmt_improvement(gmeans[1]),
        fmt_improvement(gmeans[2]),
        fmt_improvement(gmeans[3]),
        fmt_improvement(gmeans[4]),
    );
    println!(
        "\nresource note: SH_8 x 4 warps = 8KB shared (56KB L1D left); \
         SH_16 = 16KB shared (48KB L1D left)"
    );
}
