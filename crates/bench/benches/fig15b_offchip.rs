//! Fig. 15b — off-chip memory access counts for RB_{2,4,8,16} with and
//! without SMS, normalized to the `RB_8` baseline.
//!
//! Paper reference: RB_2 raises off-chip accesses by +62.3%; adding SMS
//! lowers them by 79.2pp (below the RB_8 baseline).

use sms_bench::{geomean, run_matrix, setup, Table};
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, scenes, render) = setup("Fig. 15b", "off-chip accesses for RB sweeps ± SMS");
    let sms = |rb: usize| {
        StackConfig::Sms(
            SmsParams { rb_entries: rb, ..SmsParams::default() }
                .with_skewed(true)
                .with_realloc(true),
        )
    };
    let configs = [
        StackConfig::baseline8(),
        StackConfig::Baseline { rb_entries: 2 },
        sms(2),
        StackConfig::Baseline { rb_entries: 4 },
        sms(4),
        sms(8),
        StackConfig::Baseline { rb_entries: 16 },
        sms(16),
    ];
    let results = run_matrix(&harness, &scenes, &configs, &render);

    let mut headers = vec!["scene".to_owned()];
    headers.extend(configs.iter().map(|c| c.label()));
    let mut table = Table::new(headers);
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for (i, id) in scenes.iter().enumerate() {
        let base = results[i][0].stats.mem.offchip_accesses() as f64;
        let mut row = vec![id.name().to_owned()];
        for (c, r) in results[i].iter().enumerate() {
            let ratio = r.stats.mem.offchip_accesses() as f64 / base;
            ratios[c].push(ratio);
            row.push(format!("{ratio:.3}"));
        }
        table.row(row);
    }
    let mut row = vec!["gmean".to_owned()];
    let mut g = Vec::new();
    for r in &ratios {
        g.push(geomean(r));
        row.push(format!("{:.3}", g.last().unwrap()));
    }
    table.row(row);
    println!("{table}");
    println!("paper:  RB_2 1.62x the RB_8 baseline; RB_2+SMS drops ~79pp below that");
    println!(
        "ours:   RB_2 {:.2}x -> RB_2+SMS {:.2}x;  RB_8+SMS {:.2}x;  RB_16 {:.2}x",
        g[1], g[2], g[5], g[6]
    );
}
