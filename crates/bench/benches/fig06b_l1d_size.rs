//! Fig. 6b — IPC with varying L1D sizes (baseline RB_8), normalized to 64KB.
//!
//! Paper reference: 16KB -9.6%, 32KB -4.5%, 128KB +4.5%, 256KB +12.6% —
//! notably flatter than the stack-size sweep of Fig. 6a, which motivates
//! trading a little L1D for SH stacks.

use sms_bench::{fmt_improvement, geomean, setup, RunRequest, Table};
use sms_sim::gpu::GpuConfig;
use sms_sim::rtunit::StackConfig;

fn main() {
    let (harness, scenes, render) = setup("Fig. 6b", "IPC vs L1D size (baseline RB_8)");
    let sizes_kb = [64u64, 16, 32, 128, 256];
    let stack = StackConfig::baseline8();

    // A GPU sweep rather than a stack sweep: one request per (scene, L1D).
    let requests: Vec<RunRequest> = scenes
        .iter()
        .flat_map(|&id| {
            sizes_kb.iter().map(move |&kb| {
                RunRequest::new(id, stack, render)
                    .with_gpu(GpuConfig::default().with_l1_size(kb * 1024))
            })
        })
        .collect();
    let (results, summary) = harness.run_batch(&requests);
    eprintln!("  {summary}");

    let mut headers = vec!["scene".to_owned()];
    headers.extend(sizes_kb.iter().map(|kb| format!("{kb}KB")));
    let mut table = Table::new(headers);
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); sizes_kb.len()];
    for (i, &id) in scenes.iter().enumerate() {
        let runs = &results[i * sizes_kb.len()..(i + 1) * sizes_kb.len()];
        let mut row = vec![id.name().to_owned()];
        for (c, r) in runs.iter().enumerate() {
            let ratio = r.normalized_ipc(&runs[0]);
            ratios[c].push(ratio);
            row.push(format!("{ratio:.3}"));
        }
        table.row(row);
    }
    let mut row = vec!["gmean".to_owned()];
    let mut gmeans = Vec::new();
    for r in &ratios {
        let g = geomean(r);
        gmeans.push(g);
        row.push(format!("{g:.3}"));
    }
    table.row(row);
    println!("{table}");
    println!("paper:  16KB -9.6%   32KB -4.5%   128KB +4.5%   256KB +12.6%");
    println!(
        "ours:   16KB {}   32KB {}   128KB {}   256KB {}",
        fmt_improvement(gmeans[1]),
        fmt_improvement(gmeans[2]),
        fmt_improvement(gmeans[3]),
        fmt_improvement(gmeans[4]),
    );
}
