//! Stall breakdown — where every RT lane-cycle goes, per scene and per
//! config, from the cycle-attribution layer (`RunLimits::breakdown`).
//!
//! This is the diagnosis harness for the two systematic deviations
//! EXPERIMENTS.md records against the paper:
//!
//! * **D1** — our stack-pressure magnitudes are diluted: the stack-wait
//!   share of RB_8 lane-cycles quantifies how much traversal time the
//!   spill path actually costs us, scene by scene.
//! * **D2** — `+SK` removes most bank-conflict replay cycles yet buys
//!   less IPC than the paper's +4.3pp: the table shows what fraction of
//!   the cycles SK recovers is re-absorbed by fetch/op waits instead of
//!   converting into retired work.
//!
//! All runs are armed with attribution; the Σ-buckets == cycles invariant
//! is asserted inside the simulator, so a completing sweep *is* the
//! conservation proof.

use sms_bench::{fmt_pct, setup, RunRequest, Table};
use sms_harness::RunLimits;
use sms_sim::gpu::StallBreakdown;
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, scenes, render) =
        setup("Stall breakdown", "cycle attribution per scene (D1/D2 diagnosis)");
    let mut configs = vec![
        StackConfig::baseline8(),
        StackConfig::Sms(SmsParams::default()), // +SH_8
        StackConfig::Sms(SmsParams::default().with_skewed(true)), // +SK
        StackConfig::sms_default(),             // +SK +RA
    ];
    // SL has no stack traffic at all; PRED_* adds the speculation bucket.
    // The D1/D2 tables below index the first four configs, so the
    // competitors are strictly appended columns.
    configs.extend(sms_bench::competitor_configs());
    let limits = RunLimits { breakdown: true, ..RunLimits::none() };
    let requests: Vec<RunRequest> = scenes
        .iter()
        .flat_map(|&id| {
            configs.iter().map(move |&stack| RunRequest::new(id, stack, render).with_limits(limits))
        })
        .collect();
    let (flat, summary) = harness.try_run_batch(&requests);
    eprintln!("  {summary}");

    // Group per scene; any hole makes the diagnosis tables meaningless.
    let mut rows: Vec<Vec<StallBreakdown>> = Vec::with_capacity(scenes.len());
    let mut it = flat.into_iter();
    let mut failed = 0usize;
    for &scene in &scenes {
        let mut row = Vec::with_capacity(configs.len());
        for (c, cell) in it.by_ref().take(configs.len()).enumerate() {
            match cell {
                Ok(r) => row.push(r.breakdown.unwrap_or_else(|| {
                    panic!("armed run {} / {} returned no breakdown", scene, configs[c].label())
                })),
                Err(e) => {
                    failed += 1;
                    eprintln!("  FAILED {} / {}: {e}", scene, configs[c].label());
                }
            }
        }
        rows.push(row);
    }
    if failed > 0 {
        eprintln!("  {failed} run(s) failed; breakdown cannot be diagnosed");
        std::process::exit(2);
    }

    // ---- Aggregate taxonomy: lane-cycle share per bucket, per config ----
    let mut totals = vec![StallBreakdown::default(); configs.len()];
    for row in &rows {
        for (c, b) in row.iter().enumerate() {
            totals[c].merge(b);
        }
    }
    let share = |n: u64, d: u64| if d == 0 { "-".to_owned() } else { fmt_pct(n as f64 / d as f64) };

    let config_headers: Vec<String> = configs.iter().map(|c| c.label()).collect();
    let mut headers = vec!["lane bucket".to_owned()];
    headers.extend(config_headers.iter().cloned());
    let mut agg = Table::new(headers);
    type Bucket = (&'static str, fn(&StallBreakdown) -> u64);
    let buckets: [Bucket; 9] = [
        ("fetch-wait L1", |b| b.fetch_wait_l1),
        ("fetch-wait L2", |b| b.fetch_wait_l2),
        ("fetch-wait DRAM", |b| b.fetch_wait_dram),
        ("op-wait (box/tri)", |b| b.op_wait),
        ("stack RB<->SH", |b| b.stack_wait_rb_sh),
        ("stack SH<->global", |b| b.stack_wait_sh_global),
        ("stack flush", |b| b.stack_wait_flush),
        ("conflict replay", |b| b.bank_conflict_replay),
        ("predictor wait", |b| b.predictor_wait),
    ];
    for (name, get) in buckets {
        let mut row = vec![name.to_owned()];
        row.extend(
            totals.iter().map(|t| share(get(t), t.lane_sum() - t.rt_idle - t.rt_sched_wait)),
        );
        agg.row(row);
    }
    println!("lane-cycle share of active RT time (idle/sched-wait excluded), all scenes:");
    println!("{agg}");

    // ---- D1: stack-wait share of active lane-cycles, per scene ----
    let mut d1_headers = vec!["scene".to_owned()];
    d1_headers.extend(config_headers);
    let mut d1 = Table::new(d1_headers);
    for (i, id) in scenes.iter().enumerate() {
        let mut row = vec![id.name().to_owned()];
        row.extend(
            rows[i]
                .iter()
                .map(|b| share(b.stack_wait_total(), b.lane_sum() - b.rt_idle - b.rt_sched_wait)),
        );
        d1.row(row);
    }
    println!("D1 — stack-wait share of active lane-cycles (spill-path cost):");
    println!("{d1}");

    // ---- D2: where SK's recovered conflict cycles go ----
    // recovered = replay(+SH_8) - replay(+SK); re-absorbed = growth of
    // fetch+op waits over the same pair. re-absorbed/recovered near 1.0
    // means SK converts conflicts into other stalls, not retired work.
    let mut d2 = Table::new(
        ["scene", "replay +SH_8", "replay +SK", "recovered", "re-absorbed", "ratio"]
            .map(str::to_owned)
            .to_vec(),
    );
    for (i, id) in scenes.iter().enumerate() {
        let (sh, sk) = (&rows[i][1], &rows[i][2]);
        let recovered = sh.bank_conflict_replay.saturating_sub(sk.bank_conflict_replay);
        let waits = |b: &StallBreakdown| b.fetch_wait_total() + b.op_wait;
        let reabsorbed = waits(sk).saturating_sub(waits(sh));
        d2.row(vec![
            id.name().to_owned(),
            sh.bank_conflict_replay.to_string(),
            sk.bank_conflict_replay.to_string(),
            recovered.to_string(),
            reabsorbed.to_string(),
            if recovered == 0 {
                "-".to_owned()
            } else {
                format!("{:.2}", reabsorbed as f64 / recovered as f64)
            },
        ]);
    }
    println!("D2 — SK-recovered conflict replay cycles vs growth in fetch/op waits (lane-cycles):");
    println!("{d2}");
    println!(
        "reading: D1 rows explain how much spill traffic costs each config; the D2 \
         ratio explains why killing conflicts (paper Fig. 14) buys less IPC here — \
         cycles re-absorbed by the memory system never reach retirement."
    );
}
