//! Ablation — does caching spill traffic in the L1D rescue the baseline?
//!
//! The paper's model accounts traversal-stack spills as off-chip traffic
//! (§II-C, Fig. 15b); our default matches (`stack_bypasses_l1 = true`).
//! This ablation re-runs the headline comparison with spills *allowed* to
//! allocate in L1D, quantifying how much of the baseline's penalty comes
//! from the off-chip spill path — and confirming the paper's §III-B claim
//! that the L1D is a poor substitute for a real secondary stack.

use sms_bench::{fmt_improvement, geomean, setup, RunRequest, Table};
use sms_sim::gpu::GpuConfig;
use sms_sim::rtunit::StackConfig;

fn main() {
    let (harness, mut scenes, render) =
        setup("Ablation", "stack spill traffic: off-chip vs L1-cached");
    if scenes.len() > 6 {
        scenes
            .retain(|s| matches!(s.name(), "SHIP" | "CHSNT" | "PARTY" | "BATH" | "FRST" | "SPNZA"));
    }

    let gpu_bypass = GpuConfig::default();
    let mut gpu_cached = GpuConfig::default();
    gpu_cached.l1.stack_bypasses_l1 = false;

    // Five runs per scene: {base, SMS, FULL} off-chip + {base, SMS} cached.
    let variants = [
        (StackConfig::baseline8(), gpu_bypass),
        (StackConfig::sms_default(), gpu_bypass),
        (StackConfig::FullOnChip, gpu_bypass),
        (StackConfig::baseline8(), gpu_cached),
        (StackConfig::sms_default(), gpu_cached),
    ];
    let requests: Vec<RunRequest> = scenes
        .iter()
        .flat_map(|&id| {
            variants
                .iter()
                .map(move |&(stack, gpu)| RunRequest::new(id, stack, render).with_gpu(gpu))
        })
        .collect();
    let (results, summary) = harness.run_batch(&requests);
    eprintln!("  {summary}");

    let mut table = Table::new([
        "scene",
        "SMS vs base (off-chip spills)",
        "SMS vs base (L1-cached spills)",
        "FULL vs base (off-chip spills)",
    ]);
    let mut bypass_gains = Vec::new();
    let mut cached_gains = Vec::new();
    for (i, &id) in scenes.iter().enumerate() {
        let [base_b, sms_b, full_b, base_c, sms_c] = &results[i * 5..(i + 1) * 5] else {
            unreachable!("five runs per scene");
        };
        let gb = sms_b.normalized_ipc(base_b);
        let gc = sms_c.normalized_ipc(base_c);
        bypass_gains.push(gb);
        cached_gains.push(gc);
        table.row([
            id.name().to_owned(),
            fmt_improvement(gb),
            fmt_improvement(gc),
            fmt_improvement(full_b.normalized_ipc(base_b)),
        ]);
    }
    println!("{table}");
    println!(
        "gmean SMS gain: {} with off-chip spills (paper's model) vs {} when the \
         L1D may cache spills",
        fmt_improvement(geomean(&bypass_gains)),
        fmt_improvement(geomean(&cached_gains)),
    );
}
