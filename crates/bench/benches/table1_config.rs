//! Table I — baseline GPU parameters.
//!
//! Prints the simulated configuration in the paper's Table I format so the
//! transcription can be checked at a glance.

use sms_sim::gpu::GpuConfig;
use sms_sim::rtunit::StackConfig;

fn main() {
    println!("=== Table I: Baseline GPU parameters ===\n");
    let base = GpuConfig::default();
    println!("{base}\n");

    println!("SMS default resource split (§IV-B):");
    let sms = StackConfig::sms_default();
    let carve = sms.shared_carveout(base.max_warps_per_rt_unit);
    let cfg = base.with_shared_carveout(carve);
    println!(
        "  {} -> {} KB shared memory for SH stacks, {} KB L1D",
        sms.label(),
        carve / 1024,
        cfg.l1.size_bytes / 1024
    );
    assert_eq!(carve, 8 * 1024, "paper: 8KB shared / 56KB L1D");
    assert_eq!(cfg.l1.size_bytes, 56 * 1024);
    println!("\nOK: matches the paper's 56KB L1D + 8KB shared split.");
}
