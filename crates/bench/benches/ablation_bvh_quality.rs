//! Ablation — BVH build quality vs stack pressure.
//!
//! The evaluated system uses a fast median-split builder (DESIGN.md
//! substitution note); this ablation builds the same scenes with a binned
//! SAH builder and compares traversal work, stack depths, and the SMS gain,
//! showing how stack pressure depends on tree quality.

use sms_bench::{fmt_improvement, setup, Table};
use sms_sim::bvh::{builder::SplitMethod, BuildParams, WideBvh};
use sms_sim::experiments::run_prepared;
use sms_sim::gpu::GpuConfig;
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::Scene;

fn main() {
    let (_, mut scenes, render) = setup("Ablation", "median-split vs binned-SAH BVHs");
    if scenes.len() > 4 {
        scenes.retain(|s| matches!(s.name(), "SHIP" | "CHSNT" | "PARTY" | "BUNNY"));
    }

    let mut table =
        Table::new(["scene", "builder", "node visits", "max depth", "mean depth", "SMS gain"]);
    for &id in &scenes {
        for (label, split) in
            [("median", SplitMethod::Median), ("binned-SAH", SplitMethod::BinnedSah)]
        {
            eprint!("  {id} ({label}) ...");
            let scene = render.apply(Scene::build(id));
            let params = BuildParams { split, ..BuildParams::default() };
            let bvh = WideBvh::build(&scene.prims, &params);
            let flat = sms_sim::bvh::FlatBvh::from_wide(&bvh);
            let prepared = PreparedScene { scene, bvh, flat, build_us: 0 };

            // Depth statistics from the functional renderer.
            let out = sms_sim::render::render(&prepared, &render);
            let d = &out.depths;

            let gpu = GpuConfig::default();
            let base = run_prepared(&prepared, StackConfig::baseline8(), gpu, &render);
            let sms = run_prepared(&prepared, StackConfig::sms_default(), gpu, &render);
            eprintln!(" done");
            table.row([
                id.name().to_owned(),
                label.to_owned(),
                base.stats.node_visits.to_string(),
                d.max().to_string(),
                format!("{:.2}", d.mean()),
                fmt_improvement(sms.normalized_ipc(&base)),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected: SAH trees are cheaper to traverse but also shallower-stacked, \
         so the SMS gain shrinks — stack pressure tracks tree overlap."
    );
}
