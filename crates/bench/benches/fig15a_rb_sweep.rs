//! Fig. 15a — impact of primary RB-stack sizes with and without SMS,
//! normalized to the `RB_8` baseline.
//!
//! Paper reference: RB_2 −28.3%; adding SMS to RB_2 recovers +39.7pp
//! (ending *above* the RB_8 baseline); RB_16's SMS gain is modest (+3.5pp)
//! because the larger primary stack already rarely spills.

use sms_bench::{fmt_improvement, print_normalized_ipc, run_matrix, setup};
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, scenes, render) = setup("Fig. 15a", "IPC for RB_{2,4,8,16} with and without SMS");
    let sms = |rb: usize| {
        StackConfig::Sms(
            SmsParams { rb_entries: rb, ..SmsParams::default() }
                .with_skewed(true)
                .with_realloc(true),
        )
    };
    let configs = [
        StackConfig::baseline8(),
        StackConfig::Baseline { rb_entries: 2 },
        sms(2),
        StackConfig::Baseline { rb_entries: 4 },
        sms(4),
        sms(8),
        StackConfig::Baseline { rb_entries: 16 },
        sms(16),
    ];
    let results = run_matrix(&harness, &scenes, &configs, &render);
    let g = print_normalized_ipc(&scenes, &results);

    println!("paper:  RB_2 -28.3% -> RB_2+SMS +11.4%;  RB_16 +SMS gains only +3.5pp");
    println!(
        "ours:   RB_2 {} -> RB_2+SMS {};  RB_4 {} -> RB_4+SMS {};  RB_16 {} -> RB_16+SMS {}",
        fmt_improvement(g[1]),
        fmt_improvement(g[2]),
        fmt_improvement(g[3]),
        fmt_improvement(g[4]),
        fmt_improvement(g[6]),
        fmt_improvement(g[7]),
    );
    if g[2] > 1.0 {
        println!(
            "\nkey claim reproduced: RB_2+SMS ({}) outperforms the RB_8 baseline — \
             SMS enables smaller, cheaper primary stacks.",
            fmt_improvement(g[2])
        );
    }
}
