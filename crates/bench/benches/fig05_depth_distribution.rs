//! Fig. 5 — average stack-depth distribution across all workloads.
//!
//! Paper reference: 17.0% of traversal steps require 9-16 entries and only
//! 1.9% exceed 16, which is why `RB_8 + SH_8` covers the bulk of traversal.

use sms_bench::{fmt_pct, setup, Table};
use sms_sim::analyze::{depth_buckets, depth_fraction_at, measure_all};

fn main() {
    let (_, scenes, render) = setup("Fig. 5", "stack depth distribution (all workloads)");
    let (_, total) = measure_all(&render, &scenes);

    let mut table = Table::new(["depth bucket", "fraction (ours)", "fraction (paper)"]);
    let b = depth_buckets(&total);
    table.row(["1-4", &fmt_pct(b[0]), "~52%"]);
    table.row(["5-8", &fmt_pct(b[1]), "~29%"]);
    table.row(["9-16", &fmt_pct(b[2]), "17.0%"]);
    table.row([">16", &fmt_pct(b[3]), "1.9%"]);
    println!("{table}");

    // Fine-grained distribution for the figure's x-axis.
    let mut fine = Table::new(["depth", "fraction"]);
    for d in 0..=total.max() {
        fine.row([d.to_string(), fmt_pct(depth_fraction_at(&total, d))]);
    }
    println!("{fine}");
    println!(
        "conclusion (paper §III-A): beyond 16 entries is not cost-effective; \
         8-16 entries is where spills concentrate"
    );
}
