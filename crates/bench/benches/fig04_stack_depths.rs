//! Fig. 4 — maximum / average / median traversal-stack depth per workload.
//!
//! Paper reference: averages and medians between 4 and 5, maxima around 30.
//! Depths depend only on traversal order, so this harness uses the fast
//! functional renderer.

use sms_bench::{setup, Table};
use sms_sim::analyze::measure_all;

fn main() {
    let (_, scenes, render) = setup("Fig. 4", "stack depth summary per workload");
    let (rows, total) = measure_all(&render, &scenes);

    let mut table = Table::new(["scene", "max", "average", "median", "ops"]);
    for r in &rows {
        table.row([
            r.id.name().to_owned(),
            r.recorder.max().to_string(),
            format!("{:.2}", r.recorder.mean()),
            r.recorder.quantile(0.5).to_string(),
            r.recorder.count().to_string(),
        ]);
    }
    table.row([
        "ALL".to_owned(),
        total.max().to_string(),
        format!("{:.2}", total.mean()),
        total.quantile(0.5).to_string(),
        total.count().to_string(),
    ]);
    println!("{table}");
    println!("paper: avg/median 4-5, max ~30 across workloads");
}
