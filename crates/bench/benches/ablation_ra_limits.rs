//! Ablation — dynamic-reallocation limits (§VI-B design choices).
//!
//! Sweeps the concurrent-borrow limit (paper: 4) and the consecutive-flush
//! limit (paper: 3) on the deepest-stack scenes, reporting normalized IPC
//! and reallocation activity.

use sms_bench::{run_matrix, setup, Table};
use sms_sim::rtunit::{SmsParams, StackConfig};

fn main() {
    let (harness, mut scenes, render) = setup("Ablation", "intra-warp reallocation limits");
    // Deep-stack scenes stress reallocation; keep the run affordable.
    if scenes.len() > 4 {
        scenes.retain(|s| matches!(s.name(), "SHIP" | "CHSNT" | "PARTY" | "ROBOT"));
    }

    let cfg = |borrow: usize, flush: u8| {
        StackConfig::Sms(
            SmsParams { borrow_limit: borrow, flush_limit: flush, ..SmsParams::default() }
                .with_skewed(true)
                .with_realloc(true),
        )
    };
    let configs = [
        cfg(4, 3), // paper default first = the normalization baseline
        cfg(0, 3),
        cfg(1, 3),
        cfg(2, 3),
        cfg(8, 3),
        cfg(4, 0),
        cfg(4, 1),
        cfg(4, 4),
    ];
    let labels = [
        "borrow4/flush3*",
        "borrow0",
        "borrow1",
        "borrow2",
        "borrow8",
        "flush0",
        "flush1",
        "flush4",
    ];
    let results = run_matrix(&harness, &scenes, &configs, &render);

    let mut headers = vec!["scene".to_owned()];
    headers.extend(labels.iter().map(|s| s.to_string()));
    let mut table = Table::new(headers);
    for (i, id) in scenes.iter().enumerate() {
        let mut row = vec![id.name().to_owned()];
        for r in &results[i] {
            row.push(format!("{:.3}", r.normalized_ipc(&results[i][0])));
        }
        table.row(row);
    }
    println!("{table}");

    let mut activity = Table::new(["scene", "borrows", "flushes", "global spills"]);
    for (i, id) in scenes.iter().enumerate() {
        let s = &results[i][0].stats;
        activity.row([
            id.name().to_owned(),
            s.ra_borrows.to_string(),
            s.ra_flushes.to_string(),
            s.sh_spills.to_string(),
        ]);
    }
    println!("{activity}");
    println!("(* = paper's configuration; values are IPC relative to it)");
}
