//! Host-performance baseline: times a cold, single-worker sweep of the
//! Table 2 scene set and emits machine-readable throughput numbers.
//!
//! This does not reproduce a paper figure — it benchmarks the *simulator
//! host* (wall-clock per run, runs/s, simulated cycles/s) so host-side
//! regressions are visible in CI. The cache is always bypassed (a cached
//! batch measures disk reads, not the simulator) and the worker count
//! defaults to 1 for stable numbers; `SMS_JOBS`/`SMS_SCENES` still apply.
//!
//! Appends one timestamped entry to `BENCH_core.json` (an append-only JSON
//! array, so successive runs build a throughput history; a pre-history
//! single-object file is converted in place). Override the path with
//! `SMS_BENCH_OUT`.
//!
//! A second, metrics-armed pass then writes `BENCH_metrics.json`
//! (`SMS_BENCH_METRICS_OUT`): per-`(scene, config)` stack-depth and
//! ray-latency percentile digests plus spill/reload totals. The passes are
//! separate so the timed numbers measure the bare simulator, never the
//! telemetry.

use sms_harness::json::Json;
use sms_harness::{cache, BatchMetrics, Event, Harness, HarnessConfig};
use sms_sim::bvh::{BuildParams, SplitMethod, WideBvh};
use sms_sim::config::RenderConfig;
use sms_sim::experiments;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::{Scene, SceneId};

fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Times one `WideBvh` build over the scene's primitives, in microseconds.
fn time_build(scene: &Scene, params: &BuildParams) -> u64 {
    let start = std::time::Instant::now();
    std::hint::black_box(WideBvh::build(&scene.prims, params));
    start.elapsed().as_micros() as u64
}

/// BVH build-throughput matrix: binned SAH vs parallel HLBVH on scenes
/// scaled to paper-class triangle counts (`Scene::build_scaled`). Returns
/// one JSON row per scene with wall times and tris/s for both builders.
/// Skipped when `SMS_BUILD_BENCH=0` (CI smokes that only exercise the
/// sweep path set it, keeping those steps fast).
fn build_bench() -> Vec<Json> {
    let own = |s: &str| s.to_owned();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // SHIP at detail 20 crosses one million triangles; ROBOT at detail 3
    // doubles that — both paper-scale anchors, ROBOT the largest.
    let matrix = [(SceneId::Ship, 20u32), (SceneId::Robot, 3u32)];
    let mut rows = Vec::new();
    for (id, detail) in matrix {
        let scene = Scene::build_scaled(id, detail);
        let tris = scene.prims.len() as u64;
        let sah = BuildParams { split: SplitMethod::BinnedSah, ..BuildParams::default() };
        let sah_us = time_build(&scene, &sah).max(1);
        let hlbvh_us = time_build(&scene, &BuildParams::hlbvh(workers)).max(1);
        let per_sec = |us: u64| tris as f64 / (us as f64 / 1.0e6);
        let speedup = sah_us as f64 / hlbvh_us as f64;
        println!(
            "build {:>5} detail {detail:>2}: {tris:>8} tris | sah {:>9} us ({:>12.0} tris/s) | \
             hlbvh {:>9} us ({:>12.0} tris/s) | {speedup:.1}x",
            id.name(),
            sah_us,
            per_sec(sah_us),
            hlbvh_us,
            per_sec(hlbvh_us),
        );
        rows.push(Json::Obj(vec![
            (own("scene"), Json::Str(id.name().to_owned())),
            (own("detail"), Json::U64(detail as u64)),
            (own("tris"), Json::U64(tris)),
            (own("workers"), Json::U64(workers as u64)),
            (own("sah_build_us"), Json::U64(sah_us)),
            (own("hlbvh_build_us"), Json::U64(hlbvh_us)),
            (own("sah_tris_per_sec"), Json::F64(per_sec(sah_us))),
            (own("hlbvh_tris_per_sec"), Json::F64(per_sec(hlbvh_us))),
            (own("speedup"), Json::F64(speedup)),
        ]));
    }
    rows
}

fn quiet_config() -> HarnessConfig {
    let mut cfg = HarnessConfig::from_env();
    cfg.cache_dir = None;
    if std::env::var("SMS_JOBS").is_err() {
        cfg.workers = 1;
    }
    cfg
}

fn main() {
    let render = RenderConfig::from_env();
    let scenes = experiments::scene_list();
    let mut configs = vec![StackConfig::baseline8(), StackConfig::sms_default()];
    // Competitor columns (SL / PRED_*); SMS_STACKLESS=0 / SMS_PREDICT=0
    // restore the two-config pre-competitor baseline matrix.
    configs.extend(sms_bench::competitor_configs());
    let harness = Harness::new(quiet_config());

    println!("=== perf_baseline: host throughput on the Table 2 scene set ===");
    println!(
        "workload: {:?} mode, {} scenes x {} configs, {} worker(s), cache off\n",
        render.mode,
        scenes.len(),
        configs.len(),
        if std::env::var("SMS_JOBS").is_ok() { "SMS_JOBS".to_owned() } else { "1".to_owned() }
    );

    let (results, summary) = harness.try_run_suite(&scenes, &configs, &render);
    println!("{summary}");
    let failures: Vec<String> =
        results.iter().flatten().filter_map(|r| r.as_ref().err()).map(|e| e.to_string()).collect();
    for f in &failures {
        eprintln!("FAILED: {f}");
    }
    if !failures.is_empty() {
        eprintln!("{} run(s) failed; baseline numbers would be partial", failures.len());
        std::process::exit(2);
    }

    // Per-run wall clock from the journal's job_finished events.
    let own = |s: &str| s.to_owned();
    let mut runs = Vec::new();
    let mut queued: Vec<(usize, String, String)> = Vec::new();
    for ev in harness.journal().last_batch() {
        match ev {
            Event::JobQueued { job, scene, config, .. } => queued.push((job, scene, config)),
            Event::JobFinished { job, cycles, duration_us, .. } => {
                let (scene, config) = queued
                    .iter()
                    .find(|(j, _, _)| *j == job)
                    .map(|(_, s, c)| (s.clone(), c.clone()))
                    .unwrap_or_default();
                runs.push(Json::Obj(vec![
                    (own("scene"), Json::Str(scene)),
                    (own("config"), Json::Str(config)),
                    (own("cycles"), Json::U64(cycles)),
                    (own("duration_us"), Json::U64(duration_us)),
                ]));
            }
            _ => {}
        }
    }

    let builds = if std::env::var("SMS_BUILD_BENCH").as_deref() == Ok("0") {
        Vec::new()
    } else {
        println!("\n--- BVH build throughput (binned SAH vs HLBVH, scaled scenes) ---");
        build_bench()
    };

    let timestamp = unix_timestamp();
    let doc = Json::Obj(vec![
        (own("bench"), Json::Str(own("perf_baseline"))),
        (own("timestamp"), Json::U64(timestamp)),
        (own("mode"), Json::Str(format!("{:?}", render.mode))),
        (own("scenes"), Json::U64(scenes.len() as u64)),
        (own("unique_jobs"), Json::U64(summary.unique_jobs as u64)),
        (own("workers"), Json::U64(summary.workers as u64)),
        (own("wall_us"), Json::U64(summary.wall.as_micros() as u64)),
        (own("sim_cycles"), Json::U64(summary.sim_cycles)),
        (own("runs_per_sec"), Json::F64(summary.runs_per_sec())),
        (own("sim_cycles_per_sec"), Json::F64(summary.sim_cycles_per_sec())),
        (own("runs"), Json::Arr(runs)),
        (own("builds"), Json::Arr(builds)),
    ]);
    let out = std::env::var("SMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_core.json".to_owned());
    let mut history = sms_bench::load_bench_history(&out);
    history.push(doc);
    std::fs::write(&out, format!("{}\n", Json::Arr(history))).expect("write benchmark output");
    println!("\nappended entry to {out}");

    // Metrics-armed pass: distributional digests per (scene, config).
    let mut mcfg = quiet_config();
    mcfg.limits.metrics = true;
    let mharness = Harness::new(mcfg);
    let (mresults, _) = mharness.try_run_suite(&scenes, &configs, &render);
    let mut entries = Vec::new();
    for r in mresults.iter().flatten().filter_map(|r| r.as_ref().ok()) {
        if let Some(m) = &r.metrics {
            entries.push(Json::Obj(vec![
                (own("scene"), Json::Str(r.scene.name().to_owned())),
                (own("config"), Json::Str(r.stack.label())),
                (own("metrics"), cache::metrics_to_json(&BatchMetrics::from_stacks(&m.stacks))),
            ]));
        }
    }
    let mdoc = Json::Obj(vec![
        (own("bench"), Json::Str(own("perf_baseline_metrics"))),
        (own("timestamp"), Json::U64(timestamp)),
        (own("mode"), Json::Str(format!("{:?}", render.mode))),
        (own("entries"), Json::Arr(entries)),
    ]);
    let mout =
        std::env::var("SMS_BENCH_METRICS_OUT").unwrap_or_else(|_| "BENCH_metrics.json".to_owned());
    std::fs::write(&mout, format!("{mdoc}\n")).expect("write metrics output");
    println!("wrote {mout}");
}
