//! Strict linter for the metrics exports: validates Prometheus text dumps
//! (`.prom`, via `sms_metrics::prom::validate`) and series CSVs (`.csv`,
//! via `sms_metrics::series::validate_csv`) given as arguments. Exits
//! non-zero on the first malformed file — CI's end-to-end check that an
//! armed sweep's dumps actually parse under the exposition-format rules.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: promlint <dump.prom|series.csv>...");
        std::process::exit(2);
    }
    for path in &args {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("promlint: {path}: {e}");
            std::process::exit(2);
        });
        let outcome = if path.ends_with(".csv") {
            sms_metrics::series::validate_csv(&text)
                .map(|(cols, rows)| format!("{rows} rows x {cols} columns"))
        } else {
            sms_metrics::prom::validate(&text).map(|samples| format!("{samples} samples"))
        };
        match outcome {
            Ok(what) => println!("promlint: {path}: OK ({what})"),
            Err(e) => {
                eprintln!("promlint: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
