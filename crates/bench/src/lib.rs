//! Shared plumbing for the per-figure bench harnesses.
//!
//! Every `benches/figNN_*.rs` target (built with `harness = false`)
//! regenerates one table or figure of the paper: same rows, same series,
//! printed as plain text. Absolute numbers come from our simulator; the
//! *shape* (who wins, by roughly what factor) is what reproduces the paper.
//!
//! Environment knobs honoured by all harnesses:
//!
//! * `SMS_PAPER=1` — paper-sized workloads (128×128×2spp) instead of the
//!   default fast ones (32×32×1spp; trends are resolution-stable, §VII-A).
//! * `SMS_SCENES=SHIP,PARTY` — restrict to a scene subset.

use sms_sim::config::RenderConfig;
use sms_sim::experiments::{self, RunResult};
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;

pub use sms_sim::report::{fmt_improvement, fmt_pct, geomean, Table};

/// Prints the standard harness banner and returns `(scenes, render)`.
pub fn setup(figure: &str, description: &str) -> (Vec<SceneId>, RenderConfig) {
    let render = RenderConfig::from_env();
    let scenes = experiments::scene_list();
    println!("=== {figure}: {description} ===");
    println!(
        "workload: {:?} mode, {} scenes{}\n",
        render.mode,
        scenes.len(),
        if scenes.len() < 16 { " (SMS_SCENES subset)" } else { "" }
    );
    (scenes, render)
}

/// Runs `configs` on every scene (reusing each scene's BVH); returns
/// results grouped per scene and prints progress.
pub fn run_matrix(
    scenes: &[SceneId],
    configs: &[StackConfig],
    render: &RenderConfig,
) -> Vec<Vec<RunResult>> {
    let gpu = sms_sim::gpu::GpuConfig::default();
    scenes
        .iter()
        .map(|&id| {
            eprint!("  {id} ...");
            let prepared = PreparedScene::build(id, render);
            let row: Vec<RunResult> = configs
                .iter()
                .map(|&stack| experiments::run_prepared(&prepared, stack, gpu, render))
                .collect();
            eprintln!(" done");
            row
        })
        .collect()
}

/// Prints a per-scene normalized-IPC table: first config is the baseline.
/// Returns the per-config geometric means (including the baseline's 1.0).
pub fn print_normalized_ipc(scenes: &[SceneId], results: &[Vec<RunResult>]) -> Vec<f64> {
    let configs = &results[0];
    let mut headers = vec!["scene".to_owned()];
    headers.extend(configs.iter().map(|r| r.stack.label()));
    let mut table = Table::new(headers);
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for (i, id) in scenes.iter().enumerate() {
        let base = &results[i][0];
        let mut row = vec![id.name().to_owned()];
        for (c, r) in results[i].iter().enumerate() {
            let ratio = r.normalized_ipc(base);
            ratios[c].push(ratio);
            row.push(format!("{:.3}", ratio));
        }
        table.row(row);
    }
    let mut gmeans = Vec::with_capacity(configs.len());
    let mut row = vec!["gmean".to_owned()];
    for r in &ratios {
        let g = geomean(r);
        gmeans.push(g);
        row.push(format!("{:.3}", g));
    }
    table.row(row);
    println!("{table}");
    gmeans
}
