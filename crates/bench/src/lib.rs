//! Shared plumbing for the per-figure bench harnesses.
//!
//! Every `benches/figNN_*.rs` target (built with `harness = false`)
//! regenerates one table or figure of the paper: same rows, same series,
//! printed as plain text. Absolute numbers come from our simulator; the
//! *shape* (who wins, by roughly what factor) is what reproduces the paper.
//!
//! Runs execute on the `sms-harness` subsystem: `(scene, config)` matrices
//! are deduplicated, scheduled on a worker pool, and served from the
//! on-disk result cache when the same run was simulated before. Result
//! ordering (and therefore every printed table) is byte-identical to the
//! old serial loops.
//!
//! Environment knobs honoured by all harnesses:
//!
//! * `SMS_PAPER=1` — paper-sized workloads (128×128×2spp) instead of the
//!   default fast ones (32×32×1spp; trends are resolution-stable, §VII-A).
//! * `SMS_SCENES=SHIP,PARTY` — restrict to a scene subset.
//! * `SMS_JOBS=N` — worker threads (default: available cores).
//! * `SMS_NO_CACHE=1` — bypass the result cache.
//! * `SMS_CACHE_DIR=path` — cache location (default `target/sms-cache`).
//! * `SMS_JOURNAL=path` — append JSONL run-journal events to `path`.
//! * `SMS_MAX_CYCLES=N` / `SMS_STALL_CYCLES=N` — per-run watchdog.
//! * `SMS_VALIDATE=1` — run the stack invariant validator.
//! * `SMS_RETRIES=N` — transient cache-I/O retries.
//! * `SMS_RESUME=journal.jsonl` — resume a killed sweep from its journal.
//! * `SMS_BREAKDOWN=1` — arm cycle attribution (stall taxonomy in the
//!   journal and `BatchSummary`; see `breakdown_stalls`).
//! * `SMS_TRACE=out.json` / `SMS_TRACE_PERIOD=N` — per-run Chrome-trace
//!   timeline export (implies attribution).
//! * `SMS_STACKLESS=0` / `SMS_PREDICT=0` — drop the stackless (`SL`) or
//!   predictor (`PRED_*`) competitor column from the sweeps that carry
//!   them; with both off the matrices are exactly the pre-competitor
//!   sweeps. `SMS_PREDICT_BITS=N` sizes the predictor table (default 12).
//!
//! Batches run on the fault-tolerant path: a panicking, livelocked or
//! invariant-violating run is reported per cell (and journalled as
//! `run_failed`/`run_timeout`) while the rest of the matrix completes; the
//! harness then exits with status 2 since the figure cannot be fully
//! reproduced.

use sms_harness::json::Json;
use sms_sim::config::RenderConfig;
use sms_sim::experiments::{self, RunResult};
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;

pub use sms_harness::{Harness, RunRequest};
pub use sms_sim::report::{fmt_improvement, fmt_pct, geomean, Table};

/// Prints the standard harness banner and returns the execution engine
/// plus `(scenes, render)`.
pub fn setup(figure: &str, description: &str) -> (Harness, Vec<SceneId>, RenderConfig) {
    let render = RenderConfig::from_env();
    let scenes = experiments::scene_list();
    println!("=== {figure}: {description} ===");
    println!(
        "workload: {:?} mode, {} scenes{}\n",
        render.mode,
        scenes.len(),
        if scenes.len() < 16 { " (SMS_SCENES subset)" } else { "" }
    );
    (Harness::from_env(), scenes, render)
}

/// The stack-elimination competitor columns appended to the sweeps that
/// compare against SMS: stackless traversal (`SL`) and the hash-based leaf
/// predictor (`PRED_<bits>`). `SMS_STACKLESS=0` / `SMS_PREDICT=0` drop a
/// column; `SMS_PREDICT_BITS=N` (1..=20) sizes the predictor table. Both
/// default on. Dropping them restores the pre-competitor matrix — the
/// remaining cells' stats and cache entries are byte-identical either way,
/// since a run's configuration fully determines its outcome.
pub fn competitor_configs() -> Vec<StackConfig> {
    let on = |var: &str| std::env::var(var).as_deref() != Ok("0");
    let mut configs = Vec::new();
    if on("SMS_STACKLESS") {
        configs.push(StackConfig::stackless());
    }
    if on("SMS_PREDICT") {
        let bits = match std::env::var("SMS_PREDICT_BITS") {
            Ok(s) => s.parse::<u32>().unwrap_or_else(|e| panic!("SMS_PREDICT_BITS: {e}")),
            Err(_) => 12,
        };
        assert!(
            (1..=sms_sim::rtunit::predictor::MAX_TABLE_BITS).contains(&bits),
            "SMS_PREDICT_BITS must be in 1..=20, got {bits}"
        );
        configs.push(StackConfig::Predictor { table_bits: bits });
    }
    configs
}

/// Runs `configs` on every scene through the execution engine (parallel,
/// deduplicated, cached); returns results grouped per scene in input
/// order and prints the batch summary.
///
/// Failed runs do not abort the batch: every failure is reported on stderr
/// with its diagnostic once all other cells completed, then the process
/// exits with status 2 — a figure with holes in its matrix is not a
/// reproduction.
pub fn run_matrix(
    harness: &Harness,
    scenes: &[SceneId],
    configs: &[StackConfig],
    render: &RenderConfig,
) -> Vec<Vec<RunResult>> {
    let (results, summary) = harness.try_run_suite(scenes, configs, render);
    eprintln!("  {summary}");
    let mut rows = Vec::with_capacity(results.len());
    let mut failed = 0usize;
    for (s, row) in results.into_iter().enumerate() {
        let mut ok_row = Vec::with_capacity(row.len());
        for (c, cell) in row.into_iter().enumerate() {
            match cell {
                Ok(r) => ok_row.push(r),
                Err(e) => {
                    failed += 1;
                    eprintln!("  FAILED {} / {}: {e}", scenes[s], configs[c].label());
                }
            }
        }
        rows.push(ok_row);
    }
    if failed > 0 {
        eprintln!("  {failed} run(s) failed; figure cannot be reproduced");
        std::process::exit(2);
    }
    rows
}

/// Prints a per-scene normalized-IPC table: first config is the baseline.
/// Returns the per-config geometric means (including the baseline's 1.0).
pub fn print_normalized_ipc(scenes: &[SceneId], results: &[Vec<RunResult>]) -> Vec<f64> {
    let configs = &results[0];
    let mut headers = vec!["scene".to_owned()];
    headers.extend(configs.iter().map(|r| r.stack.label()));
    let mut table = Table::new(headers);
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for (i, id) in scenes.iter().enumerate() {
        let base = &results[i][0];
        let mut row = vec![id.name().to_owned()];
        for (c, r) in results[i].iter().enumerate() {
            let ratio = r.normalized_ipc(base);
            ratios[c].push(ratio);
            row.push(format!("{:.3}", ratio));
        }
        table.row(row);
    }
    let mut gmeans = Vec::with_capacity(configs.len());
    let mut row = vec!["gmean".to_owned()];
    for r in &ratios {
        let g = geomean(r);
        gmeans.push(g);
        row.push(format!("{:.3}", g));
    }
    table.row(row);
    println!("{table}");
    gmeans
}

/// The first commit time of `path` in this repository, for backfilling a
/// pre-timestamp history entry. `None` when git (or the file's history)
/// is unavailable — callers fall back to epoch 0.
fn git_first_commit_ts(path: &str) -> Option<u64> {
    let p = std::path::Path::new(path);
    let name = p.file_name()?;
    let dir = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let out = std::process::Command::new("git")
        .args(["log", "--reverse", "--format=%ct", "--"])
        .arg(name)
        .current_dir(dir)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    text.lines().next()?.trim().parse::<u64>().ok()
}

/// Loads a `BENCH_*.json` history file with the hygiene rules every
/// appender shares: the pre-history single-object format becomes the
/// first entry, non-object entries are rejected, and entries written
/// before the `timestamp` field existed are repaired in place so the
/// series stays sortable — the *first* entry gets the file's first git
/// commit time (the commit that introduced the file is the best witness
/// for when history began), later ones get epoch 0 (visibly "before
/// history began").
pub fn load_bench_history(path: &str) -> Vec<Json> {
    let mut history =
        match std::fs::read_to_string(path).ok().and_then(|s| sms_harness::json::parse(&s).ok()) {
            Some(Json::Arr(entries)) => entries,
            Some(obj @ Json::Obj(_)) => vec![obj],
            _ => Vec::new(),
        };
    history.retain(|e| matches!(e, Json::Obj(_)));
    let mut first = true;
    for entry in &mut history {
        if let Json::Obj(fields) = entry {
            if !fields.iter().any(|(k, _)| k == "timestamp") {
                let ts = if first { git_first_commit_ts(path).unwrap_or(0) } else { 0 };
                fields.insert(1.min(fields.len()), ("timestamp".to_owned(), Json::U64(ts)));
            }
            first = false;
        }
    }
    history
}
