//! Parallel HLBVH builder: Morton codes + radix sort + treelets.
//!
//! The binned-SAH and median builders in [`crate::builder`] are `O(n log n)`
//! with a healthy constant — fine at the repo's historical ~1/100-scale
//! stand-in scenes, a wall at the paper's multi-million-triangle originals.
//! This module implements the PBR-book HLBVH construction algorithm:
//!
//! 1. quantize primitive centroids onto a 2^10-per-axis grid over the
//!    centroid bounds and interleave the coordinates into 30-bit *Morton
//!    codes* ([`morton_encode`]);
//! 2. sort the `(code, primitive)` pairs with a linear-time stable LSD
//!    *radix sort* ([`radix_sort_pairs`]);
//! 3. cut the sorted sequence into *treelets* by the top [`TREELET_BITS`]
//!    code bits (a 16×16×16 grid over the scene) and emit each treelet's
//!    subtree independently by splitting on successive Morton bits;
//! 4. build a binned-SAH *upper tree* over the treelet roots, splicing the
//!    treelet node blocks in as its leaves (SAH-based upper-level collapse).
//!
//! Steps 1–3 are fanned out across worker threads ([`fan_out`], the same
//! slot-indexed claim-counter pattern as the harness pool). The result is
//! **deterministic in the worker count**: per-primitive work is pure, the
//! chunked AABB/histogram reductions use exactly associative-commutative
//! operations (IEEE `min`/`max`, integer adds), the stable radix order is a
//! pure function of the input regardless of chunking, treelet blocks land
//! in slot order, and the upper-tree assembly is serial. A one-worker and an
//! eight-worker build produce byte-identical node arrays (asserted by the
//! tests below and by `crates/core/tests/hlbvh_golden.rs`).
//!
//! The output is an ordinary [`BinaryBvh`], so the existing
//! [`crate::wide::WideBvh::from_binary`] collapse and
//! [`crate::flat::FlatBvh`] flattening apply unchanged. Select the builder
//! with [`crate::builder::SplitMethod::Hlbvh`]; the default build path
//! (median splits) is untouched.

use crate::builder::{
    find_best_split, partition, sort_along_widest_axis, BinaryBvh, BinaryNode, BuildParams,
    PrimInfo,
};
use crate::Primitive;
use sms_geom::Aabb;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Morton bits per axis (2^10 grid cells per axis).
pub const MORTON_BITS_PER_AXIS: u32 = 10;
/// Total Morton code bits (3 axes interleaved).
pub const MORTON_BITS: u32 = 3 * MORTON_BITS_PER_AXIS;
/// High code bits that name a treelet: 12 bits = 4 per axis, i.e. the
/// treelet grid is 16×16×16 over the scene's centroid bounds (PBR-book's
/// choice — enough clusters to keep every worker busy on real scenes).
pub const TREELET_BITS: u32 = 12;
/// Morton grid resolution per axis.
const MORTON_SCALE: f32 = (1 << MORTON_BITS_PER_AXIS) as f32;

/// Spreads the low 10 bits of `v` so consecutive input bits land 3 apart.
#[inline]
fn expand_bits(mut v: u32) -> u32 {
    v &= 0x3ff;
    v = (v | (v << 16)) & 0x0300_00ff;
    v = (v | (v << 8)) & 0x0300_f00f;
    v = (v | (v << 4)) & 0x030c_30c3;
    v = (v | (v << 2)) & 0x0924_9249;
    v
}

/// Inverse of [`expand_bits`]: gathers every third bit into the low 10.
#[inline]
fn compact_bits(mut v: u32) -> u32 {
    v &= 0x0924_9249;
    v = (v | (v >> 2)) & 0x030c_30c3;
    v = (v | (v >> 4)) & 0x0300_f00f;
    v = (v | (v >> 8)) & 0x0300_00ff;
    v = (v | (v >> 16)) & 0x3ff;
    v
}

/// Interleaves three 10-bit grid coordinates into a 30-bit Morton code
/// (`x` in bit 0, `y` in bit 1, `z` in bit 2, repeating).
///
/// Coordinates ≥ 2^10 are masked to their low 10 bits.
#[inline]
pub fn morton_encode(x: u32, y: u32, z: u32) -> u32 {
    (expand_bits(z) << 2) | (expand_bits(y) << 1) | expand_bits(x)
}

/// Inverse of [`morton_encode`]: recovers `(x, y, z)` from a 30-bit code.
#[inline]
pub fn morton_decode(code: u32) -> (u32, u32, u32) {
    (compact_bits(code), compact_bits(code >> 1), compact_bits(code >> 2))
}

/// Stable linear-time LSD radix sort of `(code, payload)` pairs by `code`.
///
/// Three passes of 10 bits cover the 30-bit Morton range. Per-chunk
/// histograms are computed in parallel on up to `workers` threads; the
/// scatter keeps the classic serial stable order. The output is a pure
/// function of the input — chunking (and therefore the worker count) cannot
/// change it, which is what the parallel-build determinism test relies on.
pub fn radix_sort_pairs(items: &mut Vec<(u32, u32)>, workers: usize) {
    const BITS_PER_PASS: u32 = 10;
    const BUCKETS: usize = 1 << BITS_PER_PASS;
    let n = items.len();
    if n <= 1 {
        return;
    }
    let mut src = std::mem::take(items);
    let mut dst = vec![(0u32, 0u32); n];
    for pass in 0..MORTON_BITS.div_ceil(BITS_PER_PASS) {
        let shift = pass * BITS_PER_PASS;
        // Histogram in parallel chunks; integer sums are exact, so the
        // reduction is chunking-independent.
        let chunks = chunk_ranges(n, workers);
        let histograms: Vec<Vec<u32>> = fan_out(workers, chunks.len(), |c| {
            let mut h = vec![0u32; BUCKETS];
            for &(code, _) in &src[chunks[c].clone()] {
                h[((code >> shift) as usize) & (BUCKETS - 1)] += 1;
            }
            h
        });
        let mut offsets = vec![0usize; BUCKETS];
        let mut total = 0usize;
        for (digit, slot) in offsets.iter_mut().enumerate() {
            *slot = total;
            total += histograms.iter().map(|h| h[digit] as usize).sum::<usize>();
        }
        // Stable scatter (serial: the bandwidth-bound part is one sweep).
        for &(code, payload) in &src {
            let digit = ((code >> shift) as usize) & (BUCKETS - 1);
            dst[offsets[digit]] = (code, payload);
            offsets[digit] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *items = src;
}

/// Builds a binary BVH over `prims` with the parallel HLBVH algorithm.
///
/// Called by [`BinaryBvh::build`] when `params.split` is
/// [`crate::builder::SplitMethod::Hlbvh`]; `params.workers` caps the fan-out
/// (1 = fully serial, same output).
pub fn build_hlbvh<P: Primitive>(prims: &[P], params: &BuildParams) -> BinaryBvh {
    let workers = params.workers.max(1);
    let n = prims.len();
    if n == 0 {
        return BinaryBvh {
            nodes: vec![BinaryNode::Leaf { aabb: Aabb::EMPTY, first: 0, count: 0 }],
            prim_order: Vec::new(),
        };
    }

    // 1. Per-primitive info. Serial: `Primitive` does not require `Sync`,
    //    and this single O(n) sweep is a sliver of the build; every later
    //    stage works on the Send+Sync `PrimInfo` array and fans out.
    let chunks = chunk_ranges(n, workers);
    let info: Vec<PrimInfo> = prims
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let aabb = p.aabb();
            PrimInfo { index: i as u32, centroid: aabb.centroid(), aabb }
        })
        .collect();

    // 2. Centroid bounds: chunked union. IEEE min/max are exactly
    //    associative and commutative, so the grouping cannot change bits.
    let bounds_chunks: Vec<Aabb> = fan_out(workers, chunks.len(), |c| {
        let mut b = Aabb::EMPTY;
        for p in &info[chunks[c].clone()] {
            b.grow_point(p.centroid);
        }
        b
    });
    let mut centroid_bounds = Aabb::EMPTY;
    for b in &bounds_chunks {
        centroid_bounds.grow(b);
    }

    // 3. Morton codes over the centroid-bounds grid, in parallel.
    let ext = centroid_bounds.extent();
    let inv = |e: f32| if e > 0.0 { 1.0 / e } else { 0.0 };
    let (ix, iy, iz) = (inv(ext.x), inv(ext.y), inv(ext.z));
    let lo = centroid_bounds.min;
    let quant = |v: f32| ((v * MORTON_SCALE) as u32).min((1 << MORTON_BITS_PER_AXIS) - 1);
    let code_chunks: Vec<Vec<(u32, u32)>> = fan_out(workers, chunks.len(), |c| {
        chunks[c]
            .clone()
            .map(|i| {
                let p = info[i].centroid;
                let code = morton_encode(
                    quant((p.x - lo.x) * ix),
                    quant((p.y - lo.y) * iy),
                    quant((p.z - lo.z) * iz),
                );
                (code, i as u32)
            })
            .collect()
    });
    let mut coded: Vec<(u32, u32)> = code_chunks.into_iter().flatten().collect();

    // 4. Linear-time stable sort. Stability gives ties (identical codes) a
    //    deterministic primitive-index order.
    radix_sort_pairs(&mut coded, workers);

    // 5. Primitive info in Morton order; positions here are the final
    //    `prim_order` slots the leaves reference.
    let sorted: Vec<PrimInfo> = coded.iter().map(|&(_, i)| info[i as usize]).collect();
    let codes: Vec<u32> = coded.iter().map(|&(c, _)| c).collect();

    // 6. Treelets: maximal runs sharing the top TREELET_BITS code bits.
    let shift = MORTON_BITS - TREELET_BITS;
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0usize;
    for i in 1..n {
        if codes[i] >> shift != codes[start] >> shift {
            ranges.push(start..i);
            start = i;
        }
    }
    ranges.push(start..n);

    // 7. Per-treelet LBVH emission, fanned out. Each block is a preorder
    //    node array with its root at local index 0 and globally-correct
    //    leaf ranges; slot-indexed results make assembly order fixed.
    let blocks: Vec<Vec<BinaryNode>> = fan_out(workers, ranges.len(), |t| {
        let r = ranges[t].clone();
        let mut nodes = Vec::with_capacity(2 * r.len());
        emit_lbvh(&mut nodes, &sorted, &codes, r.start, r.len(), shift as i32 - 1, params);
        nodes
    });

    // 8. Binned-SAH upper tree over the treelet roots (serial: there are at
    //    most 2^TREELET_BITS of them), splicing treelet blocks as leaves.
    let mut roots: Vec<PrimInfo> = blocks
        .iter()
        .enumerate()
        .map(|(t, block)| {
            let aabb = block[0].aabb();
            PrimInfo { index: t as u32, centroid: aabb.centroid(), aabb }
        })
        .collect();
    let total: usize = blocks.iter().map(Vec::len).sum();
    let mut nodes = Vec::with_capacity(total + 2 * roots.len());
    emit_upper(&mut nodes, &mut roots, &blocks, params);

    BinaryBvh { nodes, prim_order: sorted.iter().map(|p| p.index).collect() }
}

/// Emits the LBVH subtree for `sorted[first..first + count]` (positions are
/// global Morton-order slots) splitting on Morton bit `bit`, preorder.
/// Returns the subtree root's index in `nodes`.
fn emit_lbvh(
    nodes: &mut Vec<BinaryNode>,
    sorted: &[PrimInfo],
    codes: &[u32],
    first: usize,
    count: usize,
    bit: i32,
    params: &BuildParams,
) -> u32 {
    // Leaf: small enough, or Morton bits exhausted on a near-coincident
    // cluster (same degenerate bound as the recursive builders).
    if count <= params.max_leaf_size || (bit < 0 && count <= params.max_leaf_size * 4) {
        let mut aabb = Aabb::EMPTY;
        for p in &sorted[first..first + count] {
            aabb.grow(&p.aabb);
        }
        let id = nodes.len() as u32;
        nodes.push(BinaryNode::Leaf { aabb, first: first as u32, count: count as u32 });
        return id;
    }

    let mid = if bit < 0 {
        // Coincident codes: split in half to bound recursion depth.
        count / 2
    } else {
        let mask = 1u32 << bit;
        if codes[first] & mask == codes[first + count - 1] & mask {
            // This bit does not discriminate; descend without a node.
            return emit_lbvh(nodes, sorted, codes, first, count, bit - 1, params);
        }
        // Binary search for the first set bit (codes are sorted).
        let mut lo = first;
        let mut hi = first + count - 1;
        while lo + 1 < hi {
            let m = lo + (hi - lo) / 2;
            if codes[m] & mask == codes[first] & mask {
                lo = m;
            } else {
                hi = m;
            }
        }
        hi - first
    };

    let my = nodes.len();
    nodes.push(BinaryNode::Leaf { aabb: Aabb::EMPTY, first: 0, count: 0 }); // placeholder
    let left = emit_lbvh(nodes, sorted, codes, first, mid, bit - 1, params);
    let right = emit_lbvh(nodes, sorted, codes, first + mid, count - mid, bit - 1, params);
    let aabb = Aabb::union(&nodes[left as usize].aabb(), &nodes[right as usize].aabb());
    nodes[my] = BinaryNode::Inner { aabb, left, right };
    my as u32
}

/// Emits the binned-SAH upper tree over treelet roots, splicing each
/// treelet's preorder block in as a leaf of the upper tree. Returns the
/// emitted subtree's root index.
fn emit_upper(
    nodes: &mut Vec<BinaryNode>,
    roots: &mut [PrimInfo],
    blocks: &[Vec<BinaryNode>],
    params: &BuildParams,
) -> u32 {
    if roots.len() == 1 {
        let base = nodes.len() as u32;
        nodes.extend(blocks[roots[0].index as usize].iter().map(|n| match n {
            BinaryNode::Inner { aabb, left, right } => {
                BinaryNode::Inner { aabb: *aabb, left: left + base, right: right + base }
            }
            leaf => leaf.clone(),
        }));
        return base;
    }

    let mut bounds = Aabb::EMPTY;
    let mut centroid_bounds = Aabb::EMPTY;
    for r in roots.iter() {
        bounds.grow(&r.aabb);
        centroid_bounds.grow_point(r.centroid);
    }
    let count = roots.len();
    let mid = match find_best_split(roots, &centroid_bounds, &bounds, params) {
        Some((axis, plane)) => {
            let mid = partition(roots, axis, plane);
            if mid == 0 || mid == count {
                sort_along_widest_axis(roots, &centroid_bounds);
                count / 2
            } else {
                mid
            }
        }
        // All treelet centroids coincide (degenerate scene): any halving.
        None => count / 2,
    };

    let my = nodes.len();
    nodes.push(BinaryNode::Leaf { aabb: Aabb::EMPTY, first: 0, count: 0 }); // placeholder
    let (lo, hi) = roots.split_at_mut(mid);
    let left = emit_upper(nodes, lo, blocks, params);
    let right = emit_upper(nodes, hi, blocks, params);
    nodes[my] = BinaryNode::Inner { aabb: bounds, left, right };
    my as u32
}

/// Splits `0..n` into at most `pieces * 4` similar-size ranges (over-split
/// so a straggler chunk cannot serialize the fan-out). The chunk list
/// depends only on `n` and `pieces`, and every chunked reduction above is
/// exact, so chunking never changes results.
fn chunk_ranges(n: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let target = (pieces.max(1) * 4).min(n.max(1));
    let size = n.div_ceil(target).max(1);
    let mut out = Vec::with_capacity(target);
    let mut start = 0;
    while start < n {
        let end = (start + size).min(n);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Runs `f(0..jobs)` on up to `workers` scoped threads, returning results
/// in job order — the same atomic-claim, slot-indexed pattern as the
/// harness worker pool, so completion order can never reorder results.
/// Panics in `f` propagate when the scope joins.
pub(crate) fn fan_out<T, F>(workers: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = workers.max(1).min(jobs);
    if threads <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= jobs {
                    break;
                }
                let result = f(job);
                *slots[job].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(v) => v,
            // The claim counter hands out every index exactly once; an
            // empty slot would mean a worker died without unwinding, which
            // the scope join above already turned into a panic.
            None => unreachable!("fan_out slot left unfilled"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SplitMethod;
    use crate::traverse::intersect_nearest;
    use crate::wide::WideBvh;
    use crate::{Hit, PrimHit};
    use sms_geom::{Ray, Triangle, Vec3};

    struct Tri(Triangle);
    impl Primitive for Tri {
        fn aabb(&self) -> Aabb {
            self.0.aabb()
        }
        fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
            self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
        }
    }

    fn scatter(n: usize) -> Vec<Tri> {
        let mut s = sms_geom::SplitMix64::new(0x51ab);
        use sms_geom::DeterministicRng;
        (0..n)
            .map(|_| {
                let p = Vec3::new(
                    s.range_f32(-40.0, 40.0),
                    s.range_f32(-10.0, 10.0),
                    s.range_f32(-40.0, 40.0),
                );
                let a = s.unit_vector() * 0.4;
                let b = s.unit_vector() * 0.4;
                Tri(Triangle::new(p, p + a, p + b))
            })
            .collect()
    }

    fn hlbvh_params(workers: usize) -> BuildParams {
        BuildParams { split: SplitMethod::Hlbvh, workers, ..BuildParams::default() }
    }

    #[test]
    fn morton_roundtrip_exhaustive_low() {
        for x in [0u32, 1, 2, 3, 511, 512, 1023] {
            for y in [0u32, 7, 600, 1023] {
                for z in [0u32, 33, 1000, 1023] {
                    assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn morton_code_fits_30_bits() {
        assert_eq!(morton_encode(1023, 1023, 1023), (1 << MORTON_BITS) - 1);
        assert_eq!(morton_encode(0, 0, 0), 0);
    }

    #[test]
    fn radix_sort_sorts_and_is_stable() {
        let mut s = sms_geom::SplitMix64::new(9);
        let mut items: Vec<(u32, u32)> =
            (0..10_000).map(|i| ((s.next_u64() as u32) & 0x3fff_ffff & !0xff, i)).collect();
        let mut expected = items.clone();
        expected.sort_by_key(|&(code, _)| code); // std stable sort
        radix_sort_pairs(&mut items, 4);
        assert_eq!(items, expected, "radix order must equal a stable sort");
    }

    #[test]
    fn empty_input_single_empty_leaf() {
        let prims: Vec<Tri> = Vec::new();
        let bvh = build_hlbvh(&prims, &hlbvh_params(1));
        assert_eq!(bvh.nodes.len(), 1);
        assert!(matches!(bvh.nodes[0], BinaryNode::Leaf { count: 0, .. }));
    }

    #[test]
    fn all_primitives_present_exactly_once() {
        let prims = scatter(2000);
        let bvh = build_hlbvh(&prims, &hlbvh_params(4));
        let mut order = bvh.prim_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..2000).collect::<Vec<u32>>());
        // Every leaf range must land inside prim_order and tile it exactly.
        let mut covered = vec![false; 2000];
        for n in &bvh.nodes {
            if let BinaryNode::Leaf { first, count, .. } = n {
                for i in *first..*first + *count {
                    assert!(!covered[i as usize], "slot {i} referenced twice");
                    covered[i as usize] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn parent_contains_children() {
        let prims = scatter(1500);
        let bvh = build_hlbvh(&prims, &hlbvh_params(4));
        for n in &bvh.nodes {
            if let BinaryNode::Inner { aabb, left, right } = n {
                assert!(aabb.contains(&bvh.nodes[*left as usize].aabb()));
                assert!(aabb.contains(&bvh.nodes[*right as usize].aabb()));
            }
        }
    }

    #[test]
    fn coincident_centroids_terminate() {
        let t = Triangle::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let prims: Vec<Tri> = (0..300).map(|_| Tri(t)).collect();
        let bvh = build_hlbvh(&prims, &hlbvh_params(2));
        assert_eq!(bvh.prim_order.len(), 300);
        assert!(bvh.depth() < 64);
    }

    #[test]
    fn nearest_hits_match_binned_sah_tree() {
        let prims = scatter(3000);
        let sah = WideBvh::build(&prims, &BuildParams::sah());
        let hl = WideBvh::build(&prims, &hlbvh_params(4));
        for i in 0..128 {
            let x = (i % 16) as f32 * 5.0 - 40.0;
            let z = (i / 16) as f32 * 10.0 - 40.0;
            let ray = Ray::new(Vec3::new(x, 30.0, z), Vec3::new(0.02, -1.0, 0.03));
            let a = intersect_nearest(&sah, &prims, &ray, 0.0, f32::INFINITY, &mut ());
            let b = intersect_nearest(&hl, &prims, &ray, 0.0, f32::INFINITY, &mut ());
            assert_eq!(a.map(|h: Hit| h.t), b.map(|h: Hit| h.t), "ray {i} nearest-t differs");
        }
    }

    #[test]
    fn build_is_deterministic_in_worker_count() {
        let prims = scatter(5000);
        let reference = build_hlbvh(&prims, &hlbvh_params(1));
        for workers in [2, 3, 5, 8] {
            let parallel = build_hlbvh(&prims, &hlbvh_params(workers));
            assert_eq!(parallel.prim_order, reference.prim_order, "{workers} workers");
            assert_eq!(parallel.nodes, reference.nodes, "{workers} workers");
            // Byte-identical, not merely PartialEq: the debug rendering
            // captures every f32 exactly (no -0.0/NaN in finite unions).
            assert_eq!(
                format!("{:?}", parallel.nodes),
                format!("{:?}", reference.nodes),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn selectable_through_binary_bvh_build() {
        let prims = scatter(400);
        let via_dispatch = BinaryBvh::build(&prims, &hlbvh_params(2));
        let direct = build_hlbvh(&prims, &hlbvh_params(2));
        assert_eq!(via_dispatch.nodes, direct.nodes);
        assert_eq!(via_dispatch.prim_order, direct.prim_order);
    }
}
