//! Binned surface-area-heuristic (SAH) binary BVH builder.
//!
//! The binary tree is an intermediate product: [`crate::wide::WideBvh`]
//! collapses it into the wide BVH the RT unit traverses.

use crate::Primitive;
use sms_geom::Aabb;

/// Number of SAH bins per axis.
const SAH_BINS: usize = 16;

/// How internal nodes choose their split plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMethod {
    /// Binned surface-area heuristic: high-quality, low-overlap trees.
    BinnedSah,
    /// Object-median split along the widest centroid axis: the fast,
    /// lower-quality strategy typical of runtime builders (Vulkan-Sim's
    /// builder is of this class). Sibling bounds overlap more, so rays hit
    /// several children per node and traversal stacks go deeper — matching
    /// the stack-depth distributions the paper reports (Figs. 4/5).
    Median,
    /// Parallel HLBVH: Morton-code the centroids, radix-sort in linear
    /// time, emit treelets bottom-up and collapse the upper levels with
    /// binned SAH (see [`crate::hlbvh`]). Linear-time and fanned out over
    /// [`BuildParams::workers`] threads — the builder for paper-scale
    /// (multi-million-triangle) scenes.
    Hlbvh,
}

/// Parameters controlling BVH construction.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildParams {
    /// Maximum primitives per leaf.
    pub max_leaf_size: usize,
    /// Relative cost of a primitive intersection vs. a node traversal step,
    /// used by the SAH termination criterion.
    pub traversal_cost: f32,
    /// Branching factor of the collapsed wide BVH (the paper uses 6).
    pub branching_factor: usize,
    /// Split strategy.
    pub split: SplitMethod,
    /// Worker threads for parallel builders ([`SplitMethod::Hlbvh`]); the
    /// serial builders ignore it. Any worker count produces byte-identical
    /// trees, so this is purely a wall-clock knob.
    pub workers: usize,
}

impl Default for BuildParams {
    /// Defaults mirror the evaluated system: BVH6, single-primitive leaves,
    /// median splits (see [`SplitMethod::Median`]).
    fn default() -> Self {
        BuildParams {
            max_leaf_size: 1,
            traversal_cost: 1.0,
            branching_factor: 6,
            split: SplitMethod::Median,
            workers: 1,
        }
    }
}

impl BuildParams {
    /// A high-quality binned-SAH configuration (for BVH-quality ablations).
    pub fn sah() -> Self {
        BuildParams { split: SplitMethod::BinnedSah, ..BuildParams::default() }
    }

    /// The parallel HLBVH configuration fanned out over `workers` threads.
    pub fn hlbvh(workers: usize) -> Self {
        BuildParams { split: SplitMethod::Hlbvh, workers, ..BuildParams::default() }
    }
}

/// A node of the intermediate binary BVH.
#[derive(Debug, Clone, PartialEq)]
pub enum BinaryNode {
    /// Internal node with two children (indices into [`BinaryBvh::nodes`]).
    Inner {
        /// Bounds of the whole subtree.
        aabb: Aabb,
        /// Left child index.
        left: u32,
        /// Right child index.
        right: u32,
    },
    /// Leaf node referencing a range of [`BinaryBvh::prim_order`].
    Leaf {
        /// Bounds of the contained primitives.
        aabb: Aabb,
        /// First index into `prim_order`.
        first: u32,
        /// Number of primitives.
        count: u32,
    },
}

impl BinaryNode {
    /// The node bounds.
    pub fn aabb(&self) -> Aabb {
        match self {
            BinaryNode::Inner { aabb, .. } | BinaryNode::Leaf { aabb, .. } => *aabb,
        }
    }
}

/// An intermediate binary BVH over a primitive array.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryBvh {
    /// Node pool; index 0 is the root.
    pub nodes: Vec<BinaryNode>,
    /// Permutation of primitive indices; leaves reference ranges of it.
    pub prim_order: Vec<u32>,
}

impl BinaryBvh {
    /// Builds a binary BVH over `prims` with binned SAH splits.
    ///
    /// An empty primitive list yields a single empty leaf so that traversal
    /// code never needs a special case.
    pub fn build<P: Primitive>(prims: &[P], params: &BuildParams) -> Self {
        if params.split == SplitMethod::Hlbvh {
            return crate::hlbvh::build_hlbvh(prims, params);
        }
        let mut info: Vec<PrimInfo> = prims
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let aabb = p.aabb();
                PrimInfo { index: i as u32, centroid: aabb.centroid(), aabb }
            })
            .collect();

        let mut nodes = Vec::with_capacity(prims.len().max(1) * 2);
        if info.is_empty() {
            nodes.push(BinaryNode::Leaf { aabb: Aabb::EMPTY, first: 0, count: 0 });
            return BinaryBvh { nodes, prim_order: Vec::new() };
        }

        nodes.push(BinaryNode::Leaf { aabb: Aabb::EMPTY, first: 0, count: 0 }); // root placeholder
        let n = info.len();
        build_recursive(&mut nodes, 0, &mut info, 0, n, params);
        let prim_order = info.iter().map(|p| p.index).collect();
        BinaryBvh { nodes, prim_order }
    }

    /// Maximum leaf depth (root = depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[BinaryNode], id: usize) -> usize {
            match &nodes[id] {
                BinaryNode::Leaf { .. } => 0,
                BinaryNode::Inner { left, right, .. } => {
                    1 + rec(nodes, *left as usize).max(rec(nodes, *right as usize))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Per-primitive build record shared by every builder in this crate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrimInfo {
    pub(crate) index: u32,
    pub(crate) centroid: sms_geom::Vec3,
    pub(crate) aabb: Aabb,
}

/// Builds the subtree for `info[first..first+count]` into `nodes[node_id]`.
fn build_recursive(
    nodes: &mut Vec<BinaryNode>,
    node_id: usize,
    info: &mut [PrimInfo],
    first: usize,
    count: usize,
    params: &BuildParams,
) {
    let slice = &info[first..first + count];
    let mut bounds = Aabb::EMPTY;
    let mut centroid_bounds = Aabb::EMPTY;
    for p in slice {
        bounds.grow(&p.aabb);
        centroid_bounds.grow_point(p.centroid);
    }

    if count <= params.max_leaf_size {
        nodes[node_id] =
            BinaryNode::Leaf { aabb: bounds, first: first as u32, count: count as u32 };
        return;
    }

    let split = match params.split {
        // `build` dispatches HLBVH to its own module before recursing.
        SplitMethod::Hlbvh => unreachable!("HLBVH never reaches build_recursive"),
        SplitMethod::BinnedSah => {
            find_best_split(&info[first..first + count], &centroid_bounds, &bounds, params)
        }
        SplitMethod::Median => {
            if centroid_bounds.extent().max_component() <= 1e-9 {
                None
            } else {
                sort_along_widest_axis(&mut info[first..first + count], &centroid_bounds);
                Some(MEDIAN_SPLIT)
            }
        }
    };

    let mid = match split {
        Some(MEDIAN_SPLIT) => count / 2,
        Some((axis, plane)) => {
            let mid = partition(&mut info[first..first + count], axis, plane);
            if mid == 0 || mid == count {
                // Degenerate SAH split: sort along the widest centroid axis
                // and cut at the median.
                sort_along_widest_axis(&mut info[first..first + count], &centroid_bounds);
                count / 2
            } else {
                mid
            }
        }
        None => {
            // All centroids coincide: either make a leaf (small) or split in
            // half (any order) to bound recursion depth.
            if count <= params.max_leaf_size * 4 {
                nodes[node_id] =
                    BinaryNode::Leaf { aabb: bounds, first: first as u32, count: count as u32 };
                return;
            }
            count / 2
        }
    };

    let left_id = nodes.len();
    nodes.push(BinaryNode::Leaf { aabb: Aabb::EMPTY, first: 0, count: 0 });
    let right_id = nodes.len();
    nodes.push(BinaryNode::Leaf { aabb: Aabb::EMPTY, first: 0, count: 0 });
    nodes[node_id] =
        BinaryNode::Inner { aabb: bounds, left: left_id as u32, right: right_id as u32 };

    build_recursive(nodes, left_id, info, first, mid, params);
    build_recursive(nodes, right_id, info, first + mid, count - mid, params);
}

/// Sentinel split value marking a median split (primitives pre-sorted).
const MEDIAN_SPLIT: (usize, f32) = (usize::MAX, 0.0);

/// Deterministically orders primitives along the widest centroid axis.
pub(crate) fn sort_along_widest_axis(slice: &mut [PrimInfo], centroid_bounds: &Aabb) {
    let axis = centroid_bounds.extent().max_axis();
    slice.sort_by(|a, b| {
        a.centroid[axis]
            .partial_cmp(&b.centroid[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    });
}

/// Finds the best binned SAH split; `None` when all centroids coincide.
pub(crate) fn find_best_split(
    slice: &[PrimInfo],
    centroid_bounds: &Aabb,
    _bounds: &Aabb,
    _params: &BuildParams,
) -> Option<(usize, f32)> {
    let ext = centroid_bounds.extent();
    if ext.max_component() <= 1e-9 {
        return None;
    }

    let mut best: Option<(usize, f32, f32)> = None; // (axis, plane, cost)
    for axis in 0..3 {
        if ext[axis] <= 1e-9 {
            continue;
        }
        let lo = centroid_bounds.min[axis];
        let scale = SAH_BINS as f32 / ext[axis];

        let mut bin_bounds = [Aabb::EMPTY; SAH_BINS];
        let mut bin_counts = [0usize; SAH_BINS];
        for p in slice {
            let b = (((p.centroid[axis] - lo) * scale) as usize).min(SAH_BINS - 1);
            bin_bounds[b].grow(&p.aabb);
            bin_counts[b] += 1;
        }

        // Sweep from the right to accumulate suffix bounds/counts.
        let mut right_bounds = [Aabb::EMPTY; SAH_BINS];
        let mut right_counts = [0usize; SAH_BINS];
        let mut acc = Aabb::EMPTY;
        let mut cnt = 0usize;
        for i in (1..SAH_BINS).rev() {
            acc.grow(&bin_bounds[i]);
            cnt += bin_counts[i];
            right_bounds[i] = acc;
            right_counts[i] = cnt;
        }

        let mut left_acc = Aabb::EMPTY;
        let mut left_cnt = 0usize;
        for i in 0..SAH_BINS - 1 {
            left_acc.grow(&bin_bounds[i]);
            left_cnt += bin_counts[i];
            if left_cnt == 0 || right_counts[i + 1] == 0 {
                continue;
            }
            let cost = left_acc.surface_area() * left_cnt as f32
                + right_bounds[i + 1].surface_area() * right_counts[i + 1] as f32;
            let plane = lo + (i + 1) as f32 / scale;
            if best.is_none_or(|(_, _, c)| cost < c) {
                best = Some((axis, plane, cost));
            }
        }
    }
    best.map(|(axis, plane, _)| (axis, plane))
}

/// Partitions `slice` so primitives with `centroid[axis] < plane` come first;
/// returns the partition point.
pub(crate) fn partition(slice: &mut [PrimInfo], axis: usize, plane: f32) -> usize {
    let mut mid = 0;
    for i in 0..slice.len() {
        if slice[i].centroid[axis] < plane {
            slice.swap(i, mid);
            mid += 1;
        }
    }
    mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrimHit;
    use sms_geom::{Ray, Triangle, Vec3};

    struct Tri(Triangle);
    impl Primitive for Tri {
        fn aabb(&self) -> Aabb {
            self.0.aabb()
        }
        fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
            self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
        }
    }

    fn grid(n: usize) -> Vec<Tri> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32 * 2.0;
                let z = (i / 10) as f32 * 2.0;
                Tri(Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 1.0, 0.0, z),
                    Vec3::new(x, 1.0, z),
                ))
            })
            .collect()
    }

    fn leaf_prim_multiset(bvh: &BinaryBvh) -> Vec<u32> {
        let mut v = bvh.prim_order.clone();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_input_single_empty_leaf() {
        let prims: Vec<Tri> = Vec::new();
        let bvh = BinaryBvh::build(&prims, &BuildParams::default());
        assert_eq!(bvh.nodes.len(), 1);
        assert!(matches!(bvh.nodes[0], BinaryNode::Leaf { count: 0, .. }));
    }

    #[test]
    fn all_primitives_present_exactly_once() {
        let prims = grid(100);
        let bvh = BinaryBvh::build(&prims, &BuildParams::default());
        let order = leaf_prim_multiset(&bvh);
        assert_eq!(order, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn root_bounds_contain_all_leaves() {
        let prims = grid(100);
        let bvh = BinaryBvh::build(&prims, &BuildParams::default());
        let root = bvh.nodes[0].aabb();
        for n in &bvh.nodes {
            assert!(root.contains(&n.aabb()), "root must contain {:?}", n.aabb());
        }
    }

    #[test]
    fn parent_contains_children() {
        let prims = grid(100);
        let bvh = BinaryBvh::build(&prims, &BuildParams::default());
        for n in &bvh.nodes {
            if let BinaryNode::Inner { aabb, left, right } = n {
                assert!(aabb.contains(&bvh.nodes[*left as usize].aabb()));
                assert!(aabb.contains(&bvh.nodes[*right as usize].aabb()));
            }
        }
    }

    #[test]
    fn leaves_respect_max_size() {
        let prims = grid(200);
        let params = BuildParams { max_leaf_size: 2, ..BuildParams::default() };
        let bvh = BinaryBvh::build(&prims, &params);
        for n in &bvh.nodes {
            if let BinaryNode::Leaf { count, .. } = n {
                assert!(*count <= 2 * 4, "leaf too big: {count}");
            }
        }
    }

    #[test]
    fn coincident_centroids_terminate() {
        // 100 identical triangles: centroid bounds are a point.
        let t = Triangle::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let prims: Vec<Tri> = (0..100).map(|_| Tri(t)).collect();
        let bvh = BinaryBvh::build(&prims, &BuildParams::default());
        assert_eq!(leaf_prim_multiset(&bvh).len(), 100);
        assert!(bvh.depth() < 64);
    }

    #[test]
    fn single_primitive() {
        let prims = grid(1);
        let bvh = BinaryBvh::build(&prims, &BuildParams::default());
        assert_eq!(bvh.nodes.len(), 1);
        assert_eq!(bvh.prim_order, vec![0]);
    }

    #[test]
    fn depth_is_logarithmic_for_uniform_grid() {
        let prims = grid(1000);
        let bvh = BinaryBvh::build(&prims, &BuildParams::default());
        // 1000 prims / 4 per leaf = 250 leaves; a balanced tree is depth ~8.
        assert!(bvh.depth() <= 20, "depth {} too large", bvh.depth());
    }
}
