//! Stack-depth and BVH-size statistics (paper Figs. 4–5, Table II).
//!
//! Depth distributions are recorded straight into an
//! [`sms_metrics::Histogram`] — logical stack depths sit far below the
//! histogram's linear-bucket cutoff, so every count, mean, median and
//! bucket fraction the paper's figures need is exact.

use crate::layout::BvhLayout;
use crate::traverse::StackObserver;
use crate::wide::WideBvh;
use sms_metrics::Histogram;

/// The paper records "the stack depth … at every push and pop operation
/// across all rays" (Figs. 4/5): a [`Histogram`] observing a traversal
/// does exactly that, symmetrically for pushes and pops.
///
/// # Example
///
/// ```
/// use sms_bvh::traverse::StackObserver;
/// use sms_metrics::Histogram;
/// let mut r = Histogram::new();
/// r.on_push(1);
/// r.on_push(2);
/// r.on_pop(1);
/// assert_eq!(r.max(), 2);
/// assert_eq!(r.count(), 3);
/// ```
impl StackObserver for Histogram {
    #[inline]
    fn on_push(&mut self, depth: usize) {
        self.record(depth as u64);
    }
    #[inline]
    fn on_pop(&mut self, depth: usize) {
        self.record(depth as u64);
    }
}

/// Structural statistics of a built BVH (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhStats {
    /// Total node count.
    pub nodes: usize,
    /// Internal node count.
    pub inner_nodes: usize,
    /// Leaf node count.
    pub leaf_nodes: usize,
    /// Maximum node depth.
    pub depth: usize,
    /// Memory image size in bytes.
    pub size_bytes: u64,
}

impl BvhStats {
    /// Measures a built BVH.
    pub fn measure(bvh: &WideBvh) -> Self {
        BvhStats {
            nodes: bvh.nodes.len(),
            inner_nodes: bvh.inner_count(),
            leaf_nodes: bvh.leaf_count(),
            depth: bvh.depth(),
            size_bytes: BvhLayout::size_bytes(bvh),
        }
    }

    /// Memory image size in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_observer_records_both_ops() {
        let mut r = Histogram::new();
        for &d in &[1usize, 2, 3, 4, 30] {
            r.on_push(d);
        }
        assert_eq!(r.max(), 30);
        assert_eq!(r.mean(), 8.0);
        assert_eq!(r.quantile(0.5), 3);
        r.on_pop(2);
        assert_eq!(r.count(), 6);
    }

    #[test]
    fn fig5_bucket_fractions_are_exact() {
        let mut r = Histogram::new();
        for &d in &[1u64, 3, 5, 7, 9, 12, 17, 40] {
            r.record(d);
        }
        let n = r.count() as f64;
        assert_eq!(r.count_in_range(0, 4) as f64 / n, 2.0 / 8.0);
        assert_eq!(r.count_in_range(5, 8) as f64 / n, 2.0 / 8.0);
        assert_eq!(r.count_in_range(9, 16) as f64 / n, 2.0 / 8.0);
        assert_eq!(r.count_above(16) as f64 / n, 2.0 / 8.0);
    }
}
