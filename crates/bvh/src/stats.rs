//! Stack-depth and BVH-size statistics (paper Figs. 4–5, Table II).

use crate::layout::BvhLayout;
use crate::traverse::StackObserver;
use crate::wide::WideBvh;

/// Records the logical traversal-stack depth at every push and pop, exactly
/// as the paper's Fig. 4/5 methodology describes.
///
/// # Example
///
/// ```
/// use sms_bvh::DepthRecorder;
/// use sms_bvh::traverse::StackObserver;
/// let mut r = DepthRecorder::new();
/// r.on_push(1);
/// r.on_push(2);
/// r.on_pop(1);
/// assert_eq!(r.max_depth(), 2);
/// assert_eq!(r.ops(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthRecorder {
    /// `counts[d]` = number of push/pop operations observed at depth `d`.
    counts: Vec<u64>,
    ops: u64,
}

impl DepthRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn record(&mut self, depth: usize) {
        if depth >= self.counts.len() {
            self.counts.resize(depth + 1, 0);
        }
        self.counts[depth] += 1;
        self.ops += 1;
    }

    /// Total number of recorded operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Largest observed depth.
    pub fn max_depth(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Mean observed depth.
    pub fn mean_depth(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
        sum as f64 / self.ops as f64
    }

    /// Median observed depth.
    pub fn median_depth(&self) -> usize {
        if self.ops == 0 {
            return 0;
        }
        let half = self.ops.div_ceil(2);
        let mut acc = 0u64;
        for (d, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= half {
                return d;
            }
        }
        self.counts.len() - 1
    }

    /// Fraction of operations whose depth fell in `[lo, hi]`.
    pub fn fraction_in(&self, lo: usize, hi: usize) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        let n: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(d, _)| *d >= lo && *d <= hi)
            .map(|(_, &c)| c)
            .sum();
        n as f64 / self.ops as f64
    }

    /// The paper's Fig. 5 buckets: fractions at depth 1–4, 5–8, 9–16, >16.
    ///
    /// (Depth-0 operations — pops that empty the stack — are folded into the
    /// first bucket, matching a distribution over *required entries*.)
    pub fn buckets(&self) -> [f64; 4] {
        [
            self.fraction_in(0, 4),
            self.fraction_in(5, 8),
            self.fraction_in(9, 16),
            self.fraction_in(17, usize::MAX),
        ]
    }

    /// Merges another recorder's observations into `self`.
    pub fn merge(&mut self, other: &DepthRecorder) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (d, &c) in other.counts.iter().enumerate() {
            self.counts[d] += c;
        }
        self.ops += other.ops;
    }
}

impl StackObserver for DepthRecorder {
    fn on_push(&mut self, depth: usize) {
        self.record(depth);
    }
    fn on_pop(&mut self, depth: usize) {
        self.record(depth);
    }
}

/// Structural statistics of a built BVH (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhStats {
    /// Total node count.
    pub nodes: usize,
    /// Internal node count.
    pub inner_nodes: usize,
    /// Leaf node count.
    pub leaf_nodes: usize,
    /// Maximum node depth.
    pub depth: usize,
    /// Memory image size in bytes.
    pub size_bytes: u64,
}

impl BvhStats {
    /// Measures a built BVH.
    pub fn measure(bvh: &WideBvh) -> Self {
        BvhStats {
            nodes: bvh.nodes.len(),
            inner_nodes: bvh.inner_count(),
            leaf_nodes: bvh.leaf_count(),
            depth: bvh.depth(),
            size_bytes: BvhLayout::size_bytes(bvh),
        }
    }

    /// Memory image size in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(depths: &[usize]) -> DepthRecorder {
        let mut r = DepthRecorder::new();
        for &d in depths {
            r.record(d);
        }
        r
    }

    #[test]
    fn empty_recorder_is_zero() {
        let r = DepthRecorder::new();
        assert_eq!(r.max_depth(), 0);
        assert_eq!(r.mean_depth(), 0.0);
        assert_eq!(r.median_depth(), 0);
        assert_eq!(r.ops(), 0);
    }

    #[test]
    fn max_mean_median() {
        let r = rec(&[1, 2, 3, 4, 30]);
        assert_eq!(r.max_depth(), 30);
        assert_eq!(r.mean_depth(), 8.0);
        assert_eq!(r.median_depth(), 3);
    }

    #[test]
    fn buckets_sum_to_one() {
        let r = rec(&[1, 3, 5, 7, 9, 12, 17, 40]);
        let b = r.buckets();
        let sum: f64 = b.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(b[0], 2.0 / 8.0);
        assert_eq!(b[1], 2.0 / 8.0);
        assert_eq!(b[2], 2.0 / 8.0);
        assert_eq!(b[3], 2.0 / 8.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = rec(&[1, 2]);
        let b = rec(&[2, 30]);
        a.merge(&b);
        assert_eq!(a.ops(), 4);
        assert_eq!(a.max_depth(), 30);
        assert_eq!(a.fraction_in(2, 2), 0.5);
    }

    #[test]
    fn median_even_count_lower_middle() {
        let r = rec(&[1, 2, 3, 4]);
        assert_eq!(r.median_depth(), 2);
    }
}
