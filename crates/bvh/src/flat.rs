//! Flattened, cache-friendly BVH layout for the host hot path.
//!
//! [`WideBvh`] is the *semantic* structure: an enum-per-node pool where each
//! internal node owns a `Vec<WideChild>`. That representation is convenient
//! to build and inspect, but traversing it chases two pointers per visit
//! (node → children vec → child AABB) and scatters nodes across the heap.
//! [`FlatBvh`] is the same tree flattened into contiguous arrays:
//!
//! * one fixed 32-byte [`FlatNode`] record per node, indexed by the *same*
//!   [`NodeId`] numbering as the source [`WideBvh`] (DFS pre-order — the
//!   first child of an internal node is `parent + 1`), so the simulated
//!   address mapping in [`crate::layout::BvhLayout`] and every `(t, node)`
//!   traversal tie-break are untouched;
//! * a child-record pool in which the children of each internal node are
//!   adjacent, with the child AABBs stored as six structure-of-arrays plane
//!   vectors (`min_x .. max_z`) — one node visit reads one contiguous run;
//! * the leaf primitive permutation, copied verbatim from the source.
//!
//! The ray-box test evaluates a full [`MAX_WIDTH`]-lane batch of child
//! AABBs per node visit straight from the plane arrays: fixed-width local
//! arrays, no branches inside the lane loop, exactly the shape the
//! autovectorizer lowers to SIMD. Each lane performs the *same* operations
//! in the *same* order on the *same* `f32` values as [`Aabb::intersect`] on
//! the wide layout, and lanes beyond the node's child count are masked out
//! of the [`ChildHits`] insertion, so traversal order — and therefore every
//! simulator statistic — is bit-identical between the two layouts (asserted
//! by `crates/core/tests/flat_golden.rs`).

use crate::traverse::{ChildHits, NodeStep, StacklessStep, TraverseBvh, MAX_WIDTH};
use crate::wide::{NodeId, WideBvh, WideNode};
use crate::{PrimHit, Primitive};
use sms_geom::{Aabb, Vec3};

/// Leaf flag in [`FlatNode::count_kind`]; low bits hold the count.
const LEAF_BIT: u32 = 1 << 31;

/// Sentinel in [`FlatBvh::parent`] / [`FlatBvh::escape`]: no such node.
/// The root has no parent; a node whose whole right context is exhausted
/// has no escape target (traversal is finished).
pub const NO_NODE: NodeId = NodeId::MAX;

/// Trailing padding entries on the child pool so a node's batch load of
/// [`MAX_WIDTH`] lanes is always in bounds; pad lanes are masked out.
const CHILD_PAD: usize = MAX_WIDTH;

/// One node of a [`FlatBvh`]: 32 bytes, cache-line friendly.
///
/// `min`/`max` are the node's own bounds (from the parent's child record;
/// the root uses the scene bounds). For internal nodes `first` indexes the
/// child-record pool and the low bits of `count_kind` give the child count;
/// for leaves (`count_kind & LEAF_BIT != 0`) `first` indexes
/// [`FlatBvh::prim_order`] and the low bits give the primitive count.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct FlatNode {
    /// Node bounds, minimum corner.
    pub min: [f32; 3],
    /// Child-record index (inner) or first primitive slot (leaf).
    pub first: u32,
    /// Node bounds, maximum corner.
    pub max: [f32; 3],
    /// Leaf flag (high bit) and child/primitive count (low 31 bits).
    pub count_kind: u32,
}

const _: () = assert!(std::mem::size_of::<FlatNode>() == 32, "FlatNode must stay 32 bytes");

impl FlatNode {
    /// `true` when this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.count_kind & LEAF_BIT != 0
    }

    /// Child count (inner) or primitive count (leaf).
    #[inline]
    pub fn count(&self) -> u32 {
        self.count_kind & !LEAF_BIT
    }
}

/// The flattened BVH: same tree, same node numbering, contiguous storage.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatBvh {
    /// Node pool indexed by [`NodeId`] — identical numbering to the source
    /// [`WideBvh::nodes`] (DFS pre-order).
    pub nodes: Vec<FlatNode>,
    /// Child node ids; the children of one internal node are adjacent.
    pub child_node: Vec<NodeId>,
    /// Child AABB planes (SoA), parallel to [`FlatBvh::child_node`].
    pub child_min_x: Vec<f32>,
    /// See [`FlatBvh::child_min_x`].
    pub child_min_y: Vec<f32>,
    /// See [`FlatBvh::child_min_x`].
    pub child_min_z: Vec<f32>,
    /// See [`FlatBvh::child_min_x`].
    pub child_max_x: Vec<f32>,
    /// See [`FlatBvh::child_min_x`].
    pub child_max_y: Vec<f32>,
    /// See [`FlatBvh::child_min_x`].
    pub child_max_z: Vec<f32>,
    /// Leaf primitive permutation, copied from the source BVH.
    pub prim_order: Vec<u32>,
    /// Bounds of the whole scene.
    pub root_aabb: Aabb,
    /// Parent link per node ([`NO_NODE`] for the root), built at flatten
    /// time for stackless traversal.
    pub parent: Vec<NodeId>,
    /// Escape link per node: the next sibling in child-record order, or —
    /// for a last child — the parent's escape, transitively. [`NO_NODE`]
    /// means the stackless traversal is finished. Following `escape`
    /// skips the node's entire subtree.
    pub escape: Vec<NodeId>,
}

impl FlatBvh {
    /// Flattens a [`WideBvh`], preserving its [`NodeId`] numbering.
    pub fn from_wide(wide: &WideBvh) -> Self {
        let n = wide.nodes.len();
        let child_total: usize = wide
            .nodes
            .iter()
            .map(|node| match node {
                WideNode::Inner { children } => children.len(),
                WideNode::Leaf { .. } => 0,
            })
            .sum();
        let padded = child_total + CHILD_PAD;
        let mut flat = FlatBvh {
            nodes: Vec::with_capacity(n),
            child_node: Vec::with_capacity(padded),
            child_min_x: Vec::with_capacity(padded),
            child_min_y: Vec::with_capacity(padded),
            child_min_z: Vec::with_capacity(padded),
            child_max_x: Vec::with_capacity(padded),
            child_max_y: Vec::with_capacity(padded),
            child_max_z: Vec::with_capacity(padded),
            prim_order: wide.prim_order.clone(),
            root_aabb: wide.root_aabb,
            parent: vec![NO_NODE; n],
            escape: vec![NO_NODE; n],
        };

        // Each node's own bounds come from its parent's child record; the
        // root's come from the scene bounds.
        let mut bounds = vec![wide.root_aabb; n];
        for node in &wide.nodes {
            if let WideNode::Inner { children } = node {
                for c in children {
                    bounds[c.node as usize] = c.aabb;
                }
            }
        }

        // Parent/escape links for stackless traversal. Node ids are DFS
        // pre-order, so every child id exceeds its parent's — by the time
        // node `id` is processed here its own escape link is already
        // final, and a last child can inherit it directly.
        for (id, node) in wide.nodes.iter().enumerate() {
            if let WideNode::Inner { children } = node {
                for (k, c) in children.iter().enumerate() {
                    debug_assert!(c.node as usize > id, "child ids must follow the parent");
                    flat.parent[c.node as usize] = id as NodeId;
                    flat.escape[c.node as usize] = match children.get(k + 1) {
                        Some(next) => next.node,
                        None => flat.escape[id],
                    };
                }
            }
        }

        for (id, node) in wide.nodes.iter().enumerate() {
            let b = bounds[id];
            let rec = match node {
                WideNode::Inner { children } => {
                    let first = flat.child_node.len() as u32;
                    for c in children {
                        flat.child_node.push(c.node);
                        flat.child_min_x.push(c.aabb.min.x);
                        flat.child_min_y.push(c.aabb.min.y);
                        flat.child_min_z.push(c.aabb.min.z);
                        flat.child_max_x.push(c.aabb.max.x);
                        flat.child_max_y.push(c.aabb.max.y);
                        flat.child_max_z.push(c.aabb.max.z);
                    }
                    FlatNode {
                        min: [b.min.x, b.min.y, b.min.z],
                        first,
                        max: [b.max.x, b.max.y, b.max.z],
                        count_kind: children.len() as u32,
                    }
                }
                WideNode::Leaf { first, count } => FlatNode {
                    min: [b.min.x, b.min.y, b.min.z],
                    first: *first,
                    max: [b.max.x, b.max.y, b.max.z],
                    count_kind: *count | LEAF_BIT,
                },
            };
            flat.nodes.push(rec);
        }
        // Pad the child pool so every inner node can load a full
        // MAX_WIDTH-lane batch; pad lanes never reach ChildHits (masked by
        // the child count) so their values are arbitrary-but-fixed.
        for _ in 0..CHILD_PAD {
            flat.child_node.push(0);
            flat.child_min_x.push(0.0);
            flat.child_min_y.push(0.0);
            flat.child_min_z.push(0.0);
            flat.child_max_x.push(0.0);
            flat.child_max_y.push(0.0);
            flat.child_max_z.push(0.0);
        }
        flat
    }

    /// Total size of the flat arrays in host bytes (node pool + child pool
    /// + stackless link arrays, excluding the fixed batch padding).
    pub fn host_bytes(&self) -> usize {
        let children = self.child_node.len().saturating_sub(CHILD_PAD);
        self.nodes.len() * std::mem::size_of::<FlatNode>()
            + children * (std::mem::size_of::<NodeId>() + 6 * 4)
            + self.prim_order.len() * 4
            + (self.parent.len() + self.escape.len()) * std::mem::size_of::<NodeId>()
    }

    /// The node's own bounds as an [`Aabb`] — the exact `f32` planes the
    /// parent's child record stored (scene bounds for the root), so the
    /// stackless own-box test culls with the same values the stacked
    /// drivers tested one level up.
    #[inline]
    pub fn own_aabb(&self, node: NodeId) -> Aabb {
        let n = &self.nodes[node as usize];
        Aabb {
            min: Vec3::new(n.min[0], n.min[1], n.min[2]),
            max: Vec3::new(n.max[0], n.max[1], n.max[2]),
        }
    }
}

impl TraverseBvh for FlatBvh {
    fn node_step<P: Primitive>(
        &self,
        prims: &[P],
        ray: &sms_geom::Ray,
        node: NodeId,
        t_min: f32,
        t_max: f32,
    ) -> NodeStep {
        let n = &self.nodes[node as usize];
        if n.is_leaf() {
            let mut best: Option<crate::Hit> = None;
            let mut limit = t_max;
            for slot in n.first..n.first + n.count() {
                let prim_id = self.prim_order[slot as usize];
                if let Some(PrimHit { t, u, v }) =
                    prims[prim_id as usize].intersect(ray, t_min, limit)
                {
                    limit = t;
                    best = Some(crate::Hit { t, prim: prim_id, u, v });
                }
            }
            NodeStep::Leaf(best)
        } else {
            // Batched slab test: evaluate all MAX_WIDTH lanes branch-free
            // over the padded SoA planes (the fixed-width arrays below are
            // what the autovectorizer lowers to SIMD), then mask lanes
            // beyond the child count at insertion. Per lane this performs
            // exactly the operations of `Aabb::intersect`, in the same
            // order, on the same f32 values the wide layout stores — so
            // ChildHits, and therefore traversal order, is bit-identical
            // to the scalar one-box-at-a-time loop.
            let first = n.first as usize;
            let count = n.count() as usize;
            let load = |v: &[f32]| -> [f32; MAX_WIDTH] {
                let mut out = [0.0; MAX_WIDTH];
                out.copy_from_slice(&v[first..first + MAX_WIDTH]);
                out
            };
            let (min_x, min_y, min_z) =
                (load(&self.child_min_x), load(&self.child_min_y), load(&self.child_min_z));
            let (max_x, max_y, max_z) =
                (load(&self.child_max_x), load(&self.child_max_y), load(&self.child_max_z));
            let (o, inv) = (ray.origin, ray.inv_dir);
            let mut enter = [0.0f32; MAX_WIDTH];
            let mut exit = [0.0f32; MAX_WIDTH];
            for lane in 0..MAX_WIDTH {
                // Aabb::intersect per lane: t0/t1 slabs, near = min(t0,t1),
                // far = max(t0,t1), enter = max(near*, t_min),
                // exit = min(far*, t_max).
                let t0x = (min_x[lane] - o.x) * inv.x;
                let t1x = (max_x[lane] - o.x) * inv.x;
                let t0y = (min_y[lane] - o.y) * inv.y;
                let t1y = (max_y[lane] - o.y) * inv.y;
                let t0z = (min_z[lane] - o.z) * inv.z;
                let t1z = (max_z[lane] - o.z) * inv.z;
                enter[lane] = t0x.min(t1x).max(t0y.min(t1y)).max(t0z.min(t1z)).max(t_min);
                exit[lane] = t0x.max(t1x).min(t0y.max(t1y)).min(t0z.max(t1z)).min(t_max);
            }
            let mut hits = ChildHits::empty();
            for lane in 0..count {
                if enter[lane] <= exit[lane] {
                    hits.insert(enter[lane], self.child_node[first + lane]);
                }
            }
            NodeStep::Inner(hits)
        }
    }

    #[inline]
    fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node as usize].is_leaf()
    }

    #[inline]
    fn has_escape_links(&self) -> bool {
        true
    }

    fn stackless_step<P: Primitive>(
        &self,
        prims: &[P],
        ray: &sms_geom::Ray,
        node: NodeId,
        t_min: f32,
        t_max: f32,
    ) -> StacklessStep {
        let n = &self.nodes[node as usize];
        let escape = {
            let e = self.escape[node as usize];
            (e != NO_NODE).then_some(e)
        };
        if self.own_aabb(node).intersect(ray, t_min, t_max).is_none() {
            return StacklessStep::Miss { escape };
        }
        if n.is_leaf() {
            let mut best: Option<crate::Hit> = None;
            let mut limit = t_max;
            for slot in n.first..n.first + n.count() {
                let prim_id = self.prim_order[slot as usize];
                if let Some(PrimHit { t, u, v }) =
                    prims[prim_id as usize].intersect(ray, t_min, limit)
                {
                    limit = t;
                    best = Some(crate::Hit { t, prim: prim_id, u, v });
                }
            }
            StacklessStep::Leaf { hit: best, escape }
        } else {
            StacklessStep::Descend { child: self.child_node[n.first as usize] }
        }
    }

    #[inline]
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        let n = &self.nodes[node as usize];
        n.is_leaf().then_some((n.first, n.count()))
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildParams;
    use crate::traverse::{intersect_any_with, intersect_nearest_with, TraversalScratch};
    use sms_geom::{Ray, Triangle, Vec3};

    struct Tri(Triangle);
    impl Primitive for Tri {
        fn aabb(&self) -> Aabb {
            self.0.aabb()
        }
        fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
            self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
        }
    }

    fn grid(n: usize) -> Vec<Tri> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32 * 2.0;
                let z = (i / 16) as f32 * 2.0;
                Tri(Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 1.0, 0.0, z),
                    Vec3::new(x, 1.0, z),
                ))
            })
            .collect()
    }

    #[test]
    fn preserves_node_numbering_and_kinds() {
        let prims = grid(300);
        let wide = WideBvh::build(&prims, &BuildParams::default());
        let flat = FlatBvh::from_wide(&wide);
        assert_eq!(flat.nodes.len(), wide.nodes.len());
        for (id, node) in wide.nodes.iter().enumerate() {
            match node {
                WideNode::Inner { children } => {
                    let f = &flat.nodes[id];
                    assert!(!f.is_leaf());
                    assert_eq!(f.count() as usize, children.len());
                    for (k, c) in children.iter().enumerate() {
                        let slot = f.first as usize + k;
                        assert_eq!(flat.child_node[slot], c.node);
                        assert_eq!(flat.child_min_x[slot], c.aabb.min.x);
                        assert_eq!(flat.child_max_z[slot], c.aabb.max.z);
                    }
                }
                WideNode::Leaf { first, count } => {
                    assert_eq!(flat.leaf_range(id as NodeId), Some((*first, *count)));
                }
            }
        }
        assert_eq!(flat.prim_order, wide.prim_order);
    }

    #[test]
    fn flat_traversal_matches_wide_exactly() {
        let prims = grid(500);
        let wide = WideBvh::build(&prims, &BuildParams::default());
        let flat = FlatBvh::from_wide(&wide);
        let mut scratch = TraversalScratch::new();
        for i in 0..64 {
            let x = (i % 8) as f32 * 4.0 + 0.3;
            let z = (i / 8) as f32 * 4.0 + 0.1;
            let ray = Ray::new(Vec3::new(x, 5.0, z), Vec3::new(0.01, -1.0, 0.02));
            let w = crate::intersect_nearest(&wide, &prims, &ray, 0.0, f32::INFINITY, &mut ());
            let f = intersect_nearest_with(
                &flat,
                &prims,
                &ray,
                0.0,
                f32::INFINITY,
                &mut (),
                &mut scratch,
            );
            assert_eq!(w, f, "ray {i}: flat nearest-hit must be bit-identical");
            let wo = crate::intersect_any(&wide, &prims, &ray, 0.0, 10.0, &mut ());
            let fo = intersect_any_with(&flat, &prims, &ray, 0.0, 10.0, &mut (), &mut scratch);
            assert_eq!(wo, fo, "ray {i}: flat occlusion must match");
        }
    }

    #[test]
    fn escape_links_are_well_formed() {
        let prims = grid(300);
        let wide = WideBvh::build(&prims, &BuildParams::default());
        let flat = FlatBvh::from_wide(&wide);
        assert_eq!(flat.parent[0], NO_NODE, "root has no parent");
        assert_eq!(flat.escape[0], NO_NODE, "root's escape ends traversal");
        for (id, node) in wide.nodes.iter().enumerate() {
            if let WideNode::Inner { children } = node {
                for (k, c) in children.iter().enumerate() {
                    assert_eq!(flat.parent[c.node as usize], id as NodeId);
                    let expect = match children.get(k + 1) {
                        Some(next) => next.node,
                        None => flat.escape[id],
                    };
                    assert_eq!(flat.escape[c.node as usize], expect);
                }
            }
        }
        // Following escape links from the root's first child must walk
        // every node's subtree exactly once and terminate: the chain of
        // (descend-all | escape) steps is finite and acyclic.
        let mut visited = 0usize;
        let mut current = 0 as NodeId;
        loop {
            visited += 1;
            assert!(visited <= flat.nodes.len(), "escape chain must not cycle");
            let n = &flat.nodes[current as usize];
            current = if n.is_leaf() {
                // skip subtree: leaf has none
                flat.escape[current as usize]
            } else {
                // descend to first child (always, ignoring geometry)
                flat.child_node[n.first as usize]
            };
            if current == NO_NODE {
                break;
            }
        }
        assert_eq!(visited, flat.nodes.len(), "descend-everywhere walk covers every node once");
    }

    #[test]
    fn stackless_traversal_matches_stacked_hits() {
        let prims = grid(500);
        let wide = WideBvh::build(&prims, &BuildParams::default());
        let flat = FlatBvh::from_wide(&wide);
        let mut scratch = TraversalScratch::new();
        let mut stackless_visits = 0u64;
        for i in 0..64 {
            let x = (i % 8) as f32 * 4.0 + 0.3;
            let z = (i / 8) as f32 * 4.0 + 0.1;
            let ray = Ray::new(Vec3::new(x, 5.0, z), Vec3::new(0.01, -1.0, 0.02));
            let stacked = intersect_nearest_with(
                &flat,
                &prims,
                &ray,
                0.0,
                f32::INFINITY,
                &mut (),
                &mut scratch,
            );
            let stackless = crate::traverse::intersect_nearest_stackless(
                &flat,
                &prims,
                &ray,
                0.0,
                f32::INFINITY,
                Some(&mut stackless_visits),
            );
            // Same nearest primitive at the same bit-exact t: both paths
            // cull conservatively and keep the closest primitive hit.
            assert_eq!(
                stacked.map(|h| (h.prim, h.t.to_bits())),
                stackless.map(|h| (h.prim, h.t.to_bits())),
                "ray {i}: stackless nearest hit must agree"
            );
            let so = intersect_any_with(&flat, &prims, &ray, 0.0, 10.0, &mut (), &mut scratch);
            let slo =
                crate::traverse::intersect_any_stackless(&flat, &prims, &ray, 0.0, 10.0, None);
            assert_eq!(so, slo, "ray {i}: stackless occlusion must agree");
        }
        assert!(stackless_visits > 0, "the visit counter must observe traversal");
    }

    #[test]
    fn node_record_is_32_bytes() {
        assert_eq!(std::mem::size_of::<FlatNode>(), 32);
        let prims = grid(64);
        let wide = WideBvh::build(&prims, &BuildParams::default());
        let flat = FlatBvh::from_wide(&wide);
        assert!(flat.host_bytes() >= flat.nodes.len() * 32);
    }
}
