//! Logical BVH traversal: depth-first, nearest-first, stack-based.
//!
//! The traversal *algorithm* is deliberately factored out of the timing
//! model: [`TraverseBvh::node_step`] performs the work of one node visit
//! (the ray-box tests of an internal node, or the ray-primitive tests of a
//! leaf), and the drivers — [`intersect_nearest`], [`intersect_any`] here,
//! and the RT-unit state machine in the `sms-rtunit` crate — layer stack
//! management on top. Because traversal order depends only on the ray and
//! the BVH, *every stack configuration performs identical traversal work*;
//! configurations differ only in where stack entries physically live and
//! what memory traffic they cost. This mirrors the paper's normalized-IPC
//! methodology.
//!
//! Both BVH layouts implement [`TraverseBvh`] — the semantic [`WideBvh`]
//! and the cache-friendly [`crate::flat::FlatBvh`] — and both produce
//! bit-identical visit sequences: child ordering goes through the single
//! [`ChildHits::insert`] implementation with its deterministic `(t, node)`
//! tie-break, on the same `f32` box planes.

use crate::wide::{NodeId, WideBvh, WideNode};
use crate::{PrimHit, Primitive};

/// Maximum supported branching factor (the paper's BVH6 fits comfortably).
pub const MAX_WIDTH: usize = 8;

/// A successful nearest-hit traversal result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Ray parameter of the nearest hit.
    pub t: f32,
    /// Index of the hit primitive in the *scene's* primitive array.
    pub prim: u32,
    /// Barycentric / parametric coordinate.
    pub u: f32,
    /// Barycentric / parametric coordinate.
    pub v: f32,
}

/// Observes logical traversal-stack activity.
///
/// The paper records "the stack depth … at every push and pop operation
/// across all rays" (Fig. 5). Implementations receive the depth *after* the
/// operation took effect. `()` is the no-op observer.
pub trait StackObserver {
    /// Called after each push with the new logical depth.
    fn on_push(&mut self, depth: usize);
    /// Called after each pop with the new logical depth.
    fn on_pop(&mut self, depth: usize);
}

impl StackObserver for () {
    #[inline]
    fn on_push(&mut self, _depth: usize) {}
    #[inline]
    fn on_pop(&mut self, _depth: usize) {}
}

/// Children of an internal node that the ray intersects, sorted nearest
/// first. Fixed-capacity to keep the hot path allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct ChildHits {
    entries: [(f32, NodeId); MAX_WIDTH],
    len: usize,
}

impl ChildHits {
    /// No intersected children.
    #[inline]
    pub fn empty() -> Self {
        ChildHits { entries: [(0.0, 0); MAX_WIDTH], len: 0 }
    }

    /// Number of intersected children.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no child was intersected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th nearest intersected child as `(t_entry, node)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> (f32, NodeId) {
        assert!(i < self.len);
        self.entries[i]
    }

    /// Iterates over `(t_entry, node)` pairs nearest-first.
    pub fn iter(&self) -> impl Iterator<Item = (f32, NodeId)> + '_ {
        self.entries[..self.len].iter().copied()
    }

    /// Inserts a child in sorted position by `(t, node)`.
    ///
    /// This is the *only* child-ordering implementation: every traversal
    /// path (wide, flat, RT unit) routes through it, so the deterministic
    /// tie-break — ascending `t`, then ascending node id — lives in exactly
    /// one place. Since node ids are unique the order is a strict total
    /// order: the result is independent of insertion order.
    #[inline]
    pub fn insert(&mut self, t: f32, node: NodeId) {
        debug_assert!(self.len < MAX_WIDTH);
        let mut j = self.len;
        while j > 0 {
            let prev = self.entries[j - 1];
            if prev.0 > t || (prev.0 == t && prev.1 > node) {
                self.entries[j] = prev;
                j -= 1;
            } else {
                break;
            }
        }
        self.entries[j] = (t, node);
        self.len += 1;
    }
}

/// The outcome of visiting one BVH node.
#[derive(Debug, Clone)]
pub enum NodeStep {
    /// An internal node was visited: these children were intersected
    /// (nearest first). The driver visits the first and pushes the rest.
    Inner(ChildHits),
    /// A leaf node was visited: the nearest primitive hit in `[t_min, t_max]`
    /// if any.
    Leaf(Option<Hit>),
}

/// The outcome of one *stackless* node visit (escape-index traversal,
/// Prokopenko & Lebrun-Grandié style).
///
/// Where [`NodeStep`] tests the *children's* boxes and hands the driver a
/// sorted worklist to push, a stackless visit tests the node's *own* box
/// and resolves wholly locally: descend to the first child, or follow the
/// precomputed escape link. No stack entry is ever created — the price is
/// losing nearest-first ordering, so rays revisit more nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StacklessStep {
    /// Own bounds hit on an internal node: descend to the first child.
    Descend {
        /// The node's first child (adjacent in the child-record pool).
        child: NodeId,
    },
    /// Own bounds hit on a leaf: the nearest primitive hit (if any), then
    /// the traversal continues at the escape link.
    Leaf {
        /// Nearest primitive hit inside `[t_min, t_max]`, if any.
        hit: Option<Hit>,
        /// Next node in escape order, `None` when the traversal is done.
        escape: Option<NodeId>,
    },
    /// Own bounds missed: skip the whole subtree via the escape link.
    Miss {
        /// Next node in escape order, `None` when the traversal is done.
        escape: Option<NodeId>,
    },
}

/// A BVH layout that supports the paper's traversal kernel.
///
/// Implemented by [`WideBvh`] (the semantic build output) and
/// [`crate::flat::FlatBvh`] (the flattened hot-path layout). Both are views
/// of the same tree with the same [`NodeId`] numbering, so a driver is
/// layout-agnostic: visit order, hit results and stack activity are
/// identical whichever implementation it runs on.
pub trait TraverseBvh {
    /// Performs the intersection work of a single node visit.
    ///
    /// For internal nodes this is `k` ray-box tests; for leaves it is
    /// `count` ray-primitive tests. This is exactly the work one RT-unit
    /// operation-unit dispatch performs per fetched node.
    fn node_step<P: Primitive>(
        &self,
        prims: &[P],
        ray: &sms_geom::Ray,
        node: NodeId,
        t_min: f32,
        t_max: f32,
    ) -> NodeStep;

    /// `true` when `node` is a leaf (selects the operation-unit latency).
    fn is_leaf(&self, node: NodeId) -> bool;

    /// `(first, count)` into the primitive permutation when `node` is a
    /// leaf, `None` for internal nodes (sizes the simulated leaf fetch).
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)>;

    /// Number of nodes in the tree.
    fn node_count(&self) -> usize;

    /// `true` when the layout carries the parent/escape links that
    /// [`TraverseBvh::stackless_step`] needs. [`crate::flat::FlatBvh`]
    /// builds them at flatten time; the semantic [`WideBvh`] does not.
    fn has_escape_links(&self) -> bool {
        false
    }

    /// Performs one stackless node visit: the node's *own* ray-box test,
    /// plus the leaf's ray-primitive tests when the box is hit.
    ///
    /// # Panics
    ///
    /// Panics when the layout has no escape links
    /// (`has_escape_links() == false`).
    fn stackless_step<P: Primitive>(
        &self,
        prims: &[P],
        ray: &sms_geom::Ray,
        node: NodeId,
        t_min: f32,
        t_max: f32,
    ) -> StacklessStep {
        let _ = (prims, ray, node, t_min, t_max);
        panic!("this BVH layout has no escape links; flatten to a FlatBvh for stackless traversal")
    }
}

impl TraverseBvh for WideBvh {
    fn node_step<P: Primitive>(
        &self,
        prims: &[P],
        ray: &sms_geom::Ray,
        node: NodeId,
        t_min: f32,
        t_max: f32,
    ) -> NodeStep {
        match &self.nodes[node as usize] {
            WideNode::Inner { children } => {
                let mut hits = ChildHits::empty();
                for c in children {
                    if let Some(t) = c.aabb.intersect(ray, t_min, t_max) {
                        hits.insert(t, c.node);
                    }
                }
                NodeStep::Inner(hits)
            }
            WideNode::Leaf { first, count } => {
                let mut best: Option<Hit> = None;
                let mut limit = t_max;
                for slot in *first..*first + *count {
                    let prim_id = self.prim_order[slot as usize];
                    if let Some(PrimHit { t, u, v }) =
                        prims[prim_id as usize].intersect(ray, t_min, limit)
                    {
                        limit = t;
                        best = Some(Hit { t, prim: prim_id, u, v });
                    }
                }
                NodeStep::Leaf(best)
            }
        }
    }

    #[inline]
    fn is_leaf(&self, node: NodeId) -> bool {
        matches!(self.nodes[node as usize], WideNode::Leaf { .. })
    }

    #[inline]
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        match self.nodes[node as usize] {
            WideNode::Leaf { first, count } => Some((first, count)),
            WideNode::Inner { .. } => None,
        }
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Performs the intersection work of a single node visit (free-function
/// form of [`TraverseBvh::node_step`], kept for existing call sites).
pub fn node_step<B: TraverseBvh, P: Primitive>(
    bvh: &B,
    prims: &[P],
    ray: &sms_geom::Ray,
    node: NodeId,
    t_min: f32,
    t_max: f32,
) -> NodeStep {
    bvh.node_step(prims, ray, node, t_min, t_max)
}

/// Reusable traversal working memory.
///
/// The drivers below need one node stack per *in-flight* ray, not per ray
/// traced: callers on hot paths (the functional renderer, reference-trace
/// loops) hold one `TraversalScratch` and thread it through every call,
/// reducing per-ray heap allocation to zero. The one-shot wrappers
/// [`intersect_nearest`] / [`intersect_any`] allocate a fresh scratch for
/// convenience.
#[derive(Debug, Default)]
pub struct TraversalScratch {
    stack: Vec<NodeId>,
}

impl TraversalScratch {
    /// A scratch with a stack sized for typical BVH6 depths.
    pub fn new() -> Self {
        TraversalScratch { stack: Vec::with_capacity(64) }
    }
}

/// Nearest-hit traversal with an unbounded logical stack.
///
/// This is the functional reference: the RT-unit timing model performs the
/// same visits in the same order and must produce identical results (asserted
/// by integration tests). Allocates a fresh [`TraversalScratch`] per call;
/// loops over many rays should use [`intersect_nearest_with`].
pub fn intersect_nearest<B: TraverseBvh, P: Primitive, O: StackObserver>(
    bvh: &B,
    prims: &[P],
    ray: &sms_geom::Ray,
    t_min: f32,
    t_max: f32,
    observer: &mut O,
) -> Option<Hit> {
    intersect_nearest_with(bvh, prims, ray, t_min, t_max, observer, &mut TraversalScratch::new())
}

/// [`intersect_nearest`] with caller-provided scratch (zero allocation).
pub fn intersect_nearest_with<B: TraverseBvh, P: Primitive, O: StackObserver>(
    bvh: &B,
    prims: &[P],
    ray: &sms_geom::Ray,
    t_min: f32,
    t_max: f32,
    observer: &mut O,
    scratch: &mut TraversalScratch,
) -> Option<Hit> {
    let stack = &mut scratch.stack;
    stack.clear();
    let mut current: Option<NodeId> = Some(0);
    let mut best: Option<Hit> = None;
    let mut limit = t_max;

    while let Some(node) = current {
        match bvh.node_step(prims, ray, node, t_min, limit) {
            NodeStep::Inner(hits) => {
                if hits.is_empty() {
                    current = pop(stack, observer);
                } else {
                    // Visit nearest child next; push the rest far-to-near so
                    // the nearest pending child is popped first (paper §II-A).
                    for i in (1..hits.len()).rev() {
                        stack.push(hits.get(i).1);
                        observer.on_push(stack.len());
                    }
                    current = Some(hits.get(0).1);
                }
            }
            NodeStep::Leaf(hit) => {
                if let Some(h) = hit {
                    if h.t < limit {
                        limit = h.t;
                        best = Some(h);
                    }
                }
                current = pop(stack, observer);
            }
        }
    }
    best
}

/// Any-hit (occlusion) traversal: returns `true` as soon as any primitive is
/// hit in `[t_min, t_max]`. Used for shadow rays. Allocates a fresh
/// [`TraversalScratch`] per call; loops should use [`intersect_any_with`].
pub fn intersect_any<B: TraverseBvh, P: Primitive, O: StackObserver>(
    bvh: &B,
    prims: &[P],
    ray: &sms_geom::Ray,
    t_min: f32,
    t_max: f32,
    observer: &mut O,
) -> bool {
    intersect_any_with(bvh, prims, ray, t_min, t_max, observer, &mut TraversalScratch::new())
}

/// [`intersect_any`] with caller-provided scratch (zero allocation).
pub fn intersect_any_with<B: TraverseBvh, P: Primitive, O: StackObserver>(
    bvh: &B,
    prims: &[P],
    ray: &sms_geom::Ray,
    t_min: f32,
    t_max: f32,
    observer: &mut O,
    scratch: &mut TraversalScratch,
) -> bool {
    let stack = &mut scratch.stack;
    stack.clear();
    let mut current: Option<NodeId> = Some(0);

    while let Some(node) = current {
        match bvh.node_step(prims, ray, node, t_min, t_max) {
            NodeStep::Inner(hits) => {
                if hits.is_empty() {
                    current = pop(stack, observer);
                } else {
                    for i in (1..hits.len()).rev() {
                        stack.push(hits.get(i).1);
                        observer.on_push(stack.len());
                    }
                    current = Some(hits.get(0).1);
                }
            }
            NodeStep::Leaf(hit) => {
                if hit.is_some() {
                    return true;
                }
                current = pop(stack, observer);
            }
        }
    }
    false
}

/// Nearest-hit traversal with **zero stack operations**: every visit
/// resolves locally through the layout's escape links.
///
/// The visit order is fixed left-to-right (child-record order), not
/// nearest-first, so the same ray touches more nodes than the stacked
/// drivers — `visits` (when provided) counts them so callers can quantify
/// the re-visit overhead. Hit results are identical to
/// [`intersect_nearest`]: both paths cull with conservative box tests and
/// keep the closest primitive hit.
pub fn intersect_nearest_stackless<B: TraverseBvh, P: Primitive>(
    bvh: &B,
    prims: &[P],
    ray: &sms_geom::Ray,
    t_min: f32,
    t_max: f32,
    mut visits: Option<&mut u64>,
) -> Option<Hit> {
    let mut current: Option<NodeId> = Some(0);
    let mut best: Option<Hit> = None;
    let mut limit = t_max;
    while let Some(node) = current {
        if let Some(v) = visits.as_deref_mut() {
            *v += 1;
        }
        current = match bvh.stackless_step(prims, ray, node, t_min, limit) {
            StacklessStep::Descend { child } => Some(child),
            StacklessStep::Leaf { hit, escape } => {
                if let Some(h) = hit {
                    if h.t < limit {
                        limit = h.t;
                        best = Some(h);
                    }
                }
                escape
            }
            StacklessStep::Miss { escape } => escape,
        };
    }
    best
}

/// Any-hit (occlusion) traversal via escape links: returns `true` as soon
/// as any primitive is hit in `[t_min, t_max]`. Zero stack operations; see
/// [`intersect_nearest_stackless`].
pub fn intersect_any_stackless<B: TraverseBvh, P: Primitive>(
    bvh: &B,
    prims: &[P],
    ray: &sms_geom::Ray,
    t_min: f32,
    t_max: f32,
    mut visits: Option<&mut u64>,
) -> bool {
    let mut current: Option<NodeId> = Some(0);
    while let Some(node) = current {
        if let Some(v) = visits.as_deref_mut() {
            *v += 1;
        }
        current = match bvh.stackless_step(prims, ray, node, t_min, t_max) {
            StacklessStep::Descend { child } => Some(child),
            StacklessStep::Leaf { hit, escape } => {
                if hit.is_some() {
                    return true;
                }
                escape
            }
            StacklessStep::Miss { escape } => escape,
        };
    }
    false
}

#[inline]
fn pop<O: StackObserver>(stack: &mut Vec<NodeId>, observer: &mut O) -> Option<NodeId> {
    let v = stack.pop();
    if v.is_some() {
        observer.on_pop(stack.len());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildParams;
    use sms_geom::{Aabb, Ray, Triangle, Vec3};

    struct Tri(Triangle);
    impl Primitive for Tri {
        fn aabb(&self) -> Aabb {
            self.0.aabb()
        }
        fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
            self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
        }
    }

    /// A wall of triangles at increasing z; rays down +z must hit the nearest.
    fn walls(n: usize) -> Vec<Tri> {
        (0..n)
            .map(|i| {
                let z = i as f32 + 1.0;
                Tri(Triangle::new(
                    Vec3::new(-10.0, -10.0, z),
                    Vec3::new(10.0, -10.0, z),
                    Vec3::new(0.0, 10.0, z),
                ))
            })
            .collect()
    }

    fn brute_force(prims: &[Tri], ray: &Ray, t_min: f32, t_max: f32) -> Option<Hit> {
        let mut best: Option<Hit> = None;
        let mut limit = t_max;
        for (i, p) in prims.iter().enumerate() {
            if let Some(h) = p.intersect(ray, t_min, limit) {
                limit = h.t;
                best = Some(Hit { t: h.t, prim: i as u32, u: h.u, v: h.v });
            }
        }
        best
    }

    #[test]
    fn nearest_hit_matches_brute_force() {
        let prims = walls(50);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        for i in 0..20 {
            let x = (i as f32) * 0.05 - 0.5;
            let ray = Ray::new(Vec3::new(x, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
            let a = intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ());
            let b = brute_force(&prims, &ray, 0.0, f32::INFINITY);
            assert_eq!(a.map(|h| h.prim), b.map(|h| h.prim));
        }
    }

    #[test]
    fn miss_returns_none() {
        let prims = walls(10);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let ray = Ray::new(Vec3::new(100.0, 100.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ()).is_none());
        assert!(!intersect_any(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ()));
    }

    #[test]
    fn any_hit_detects_occlusion_within_range() {
        let prims = walls(10);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(intersect_any(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ()));
        // Nothing closer than z=1, so a segment ending at 0.5 is unoccluded.
        assert!(!intersect_any(&bvh, &prims, &ray, 0.0, 0.5, &mut ()));
    }

    #[test]
    fn child_hits_sorted_nearest_first() {
        let mut h = ChildHits::empty();
        h.insert(3.0, 1);
        h.insert(1.0, 2);
        h.insert(2.0, 3);
        h.insert(1.0, 0);
        let order: Vec<_> = h.iter().collect();
        assert_eq!(order, vec![(1.0, 0), (1.0, 2), (2.0, 3), (3.0, 1)]);
    }

    #[test]
    fn child_hits_order_is_insertion_order_independent() {
        // The (t, node) order is strict and total, so any insertion order
        // yields the same sequence — the determinism the simulator needs.
        let inputs = [(2.0, 7), (2.0, 3), (0.5, 9), (4.0, 1), (0.5, 2)];
        let mut forward = ChildHits::empty();
        for (t, n) in inputs {
            forward.insert(t, n);
        }
        let mut backward = ChildHits::empty();
        for (t, n) in inputs.iter().rev() {
            backward.insert(*t, *n);
        }
        assert_eq!(forward.iter().collect::<Vec<_>>(), backward.iter().collect::<Vec<_>>());
        assert_eq!(
            forward.iter().collect::<Vec<_>>(),
            vec![(0.5, 2), (0.5, 9), (2.0, 3), (2.0, 7), (4.0, 1)]
        );
    }

    #[test]
    fn observer_sees_pushes_and_pops() {
        #[derive(Default)]
        struct Counter {
            pushes: usize,
            pops: usize,
            max_depth: usize,
        }
        impl StackObserver for Counter {
            fn on_push(&mut self, depth: usize) {
                self.pushes += 1;
                self.max_depth = self.max_depth.max(depth);
            }
            fn on_pop(&mut self, depth: usize) {
                self.pops += 1;
                let _ = depth;
            }
        }
        let prims = walls(64);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let mut c = Counter::default();
        let _ = intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut c);
        // Every push is eventually popped (traversal runs to completion).
        assert_eq!(c.pushes, c.pops);
        assert!(c.pushes > 0, "a ray through 64 stacked walls must push");
    }

    #[test]
    fn t_max_limits_traversal() {
        let prims = walls(50);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = intersect_nearest(&bvh, &prims, &ray, 0.0, 0.5, &mut ());
        assert!(hit.is_none());
        let hit = intersect_nearest(&bvh, &prims, &ray, 1.5, f32::INFINITY, &mut ());
        assert_eq!(hit.unwrap().prim, 1, "t_min skips the first wall");
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        let prims = walls(50);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let mut scratch = TraversalScratch::new();
        for i in 0..20 {
            let x = (i as f32) * 0.05 - 0.5;
            let ray = Ray::new(Vec3::new(x, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
            let fresh = intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ());
            let reused = intersect_nearest_with(
                &bvh,
                &prims,
                &ray,
                0.0,
                f32::INFINITY,
                &mut (),
                &mut scratch,
            );
            assert_eq!(fresh, reused);
        }
    }
}
