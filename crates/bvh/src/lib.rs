//! Bounding volume hierarchy construction, layout and traversal.
//!
//! This crate implements the acceleration-structure substrate the paper's
//! evaluation rests on (§II-A):
//!
//! * [`builder`] — a binned-SAH *binary* BVH builder.
//! * [`hlbvh`] — a parallel linear-time HLBVH builder (Morton codes +
//!   radix sort + treelets with a binned-SAH upper tree) for paper-scale
//!   scenes; deterministic in the worker count.
//! * [`wide`] — collapse of the binary BVH into a *wide* BVH ("BVHk", the
//!   paper traverses BVH6: up to six children per internal node).
//! * [`flat`] — the same tree flattened into contiguous 32-byte node
//!   records with SoA child AABB planes; hot host paths traverse this
//!   layout (same node numbering, bit-identical visit order).
//! * [`layout`] — the flattened memory image of the BVH: every node and
//!   primitive record gets a byte address in the simulated global address
//!   space, which is what the cycle-level RT unit fetches through the cache
//!   hierarchy.
//! * [`traverse`] — the *logical* traversal algorithm (depth-first with a
//!   traversal stack, nearest-first child ordering). Both the functional
//!   reference renderer and the cycle-level RT unit drive the same
//!   [`traverse::node_step`] kernel, which guarantees that traversal work is
//!   identical across stack configurations — only *timing* differs.
//! * [`stats`] — stack-depth recording (paper Figs. 4, 5 and 10) and BVH
//!   size statistics (Table II).
//!
//! # Example
//!
//! ```
//! use sms_bvh::{BuildParams, Primitive, PrimHit, WideBvh};
//! use sms_geom::{Aabb, Ray, Triangle, Vec3};
//!
//! struct Tri(Triangle);
//! impl Primitive for Tri {
//!     fn aabb(&self) -> Aabb { self.0.aabb() }
//!     fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
//!         self.0.intersect(ray, t_min, t_max)
//!             .map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
//!     }
//! }
//!
//! let prims: Vec<Tri> = (0..64)
//!     .map(|i| {
//!         let x = i as f32;
//!         Tri(Triangle::new(
//!             Vec3::new(x, 0.0, 0.0),
//!             Vec3::new(x + 1.0, 0.0, 0.0),
//!             Vec3::new(x, 1.0, 0.0),
//!         ))
//!     })
//!     .collect();
//! let bvh = WideBvh::build(&prims, &BuildParams::default());
//! let ray = Ray::new(Vec3::new(10.2, 0.2, -5.0), Vec3::new(0.0, 0.0, 1.0));
//! let hit = sms_bvh::traverse::intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ());
//! assert!(hit.is_some());
//! ```

pub mod builder;
pub mod flat;
pub mod hlbvh;
pub mod layout;
pub mod restart;
pub mod stats;
pub mod traverse;
pub mod wide;

pub use builder::{BinaryBvh, BuildParams, SplitMethod};
pub use flat::{FlatBvh, FlatNode, NO_NODE};
pub use hlbvh::{morton_decode, morton_encode, radix_sort_pairs};
pub use layout::{BvhLayout, NODE_BASE_ADDR, NODE_STRIDE, PRIM_BASE_ADDR, PRIM_STRIDE};
pub use restart::{intersect_nearest_restart, RestartStats};
pub use stats::BvhStats;
pub use traverse::{
    intersect_any, intersect_any_stackless, intersect_any_with, intersect_nearest,
    intersect_nearest_stackless, intersect_nearest_with, Hit, StackObserver, StacklessStep,
    TraversalScratch, TraverseBvh,
};
pub use wide::{NodeId, WideBvh, WideChild, WideNode};

use sms_geom::{Aabb, Ray};

/// Result of a successful ray/primitive intersection inside a BVH leaf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimHit {
    /// Ray parameter at the hit.
    pub t: f32,
    /// First barycentric / parametric coordinate (0 for analytic prims).
    pub u: f32,
    /// Second barycentric / parametric coordinate (0 for analytic prims).
    pub v: f32,
}

/// A primitive that can be stored in BVH leaves.
///
/// Implemented by the scene crate for its triangle and sphere primitives.
pub trait Primitive {
    /// Tight bounding box used by the builder.
    fn aabb(&self) -> Aabb;
    /// Nearest intersection within `[t_min, t_max]`, if any.
    fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit>;
}
