//! Flattened memory image of a wide BVH.
//!
//! The cycle-level simulator does not fetch Rust objects — it fetches *byte
//! addresses* through the L1D/L2/DRAM hierarchy. This module assigns every
//! BVH node and primitive record an address in the simulated global address
//! space, with strides chosen to mirror a realistic BVH6 memory format:
//!
//! * an internal node is 128 B — one cache line — using the compressed
//!   wide-node encoding hardware RT units employ (quantized child AABBs,
//!   as in Ylitie et al.'s compressed wide BVHs, which Vulkan-Sim's RT
//!   cores are modelled after);
//! * a leaf node's primitive records are 64 B each (triangle vertices plus
//!   material/primitive ids).
//!
//! Traversal-stack entries store node addresses (8 B each, as in the paper).

use crate::wide::{NodeId, WideBvh, WideNode};

/// Base address of the BVH node region.
pub const NODE_BASE_ADDR: u64 = 0x1000_0000;
/// Byte stride between consecutive BVH nodes (one compressed node = one
/// 128 B cache line).
pub const NODE_STRIDE: u64 = 128;
/// Base address of the primitive-record region.
pub const PRIM_BASE_ADDR: u64 = 0x4000_0000;
/// Byte stride of one primitive record.
pub const PRIM_STRIDE: u64 = 64;

/// Address helpers tying a [`WideBvh`] to the simulated address space.
///
/// # Example
///
/// ```
/// use sms_bvh::layout::{BvhLayout, NODE_BASE_ADDR, NODE_STRIDE};
/// let addr = BvhLayout::node_addr(3);
/// assert_eq!(addr, NODE_BASE_ADDR + 3 * NODE_STRIDE);
/// assert_eq!(BvhLayout::node_of_addr(addr), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BvhLayout;

impl BvhLayout {
    /// The global-memory address of node `id`.
    #[inline]
    pub fn node_addr(id: NodeId) -> u64 {
        NODE_BASE_ADDR + id as u64 * NODE_STRIDE
    }

    /// Inverse of [`BvhLayout::node_addr`].
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a node address.
    #[inline]
    pub fn node_of_addr(addr: u64) -> NodeId {
        assert!(
            addr >= NODE_BASE_ADDR && (addr - NODE_BASE_ADDR).is_multiple_of(NODE_STRIDE),
            "0x{addr:x} is not a BVH node address"
        );
        ((addr - NODE_BASE_ADDR) / NODE_STRIDE) as NodeId
    }

    /// The address of the `slot`-th primitive record (slots index the BVH's
    /// permuted primitive order so leaf ranges are contiguous in memory).
    #[inline]
    pub fn prim_addr(slot: u32) -> u64 {
        PRIM_BASE_ADDR + slot as u64 * PRIM_STRIDE
    }

    /// Addresses covered when fetching node `id` (one node = `NODE_STRIDE`
    /// bytes starting at the node address).
    #[inline]
    pub fn node_fetch(id: NodeId) -> (u64, u32) {
        (Self::node_addr(id), NODE_STRIDE as u32)
    }

    /// Addresses covered when fetching the primitive records of a leaf.
    #[inline]
    pub fn leaf_fetch(first: u32, count: u32) -> (u64, u32) {
        (Self::prim_addr(first), count * PRIM_STRIDE as u32)
    }

    /// Total memory footprint of a BVH image in bytes (nodes + primitive
    /// records), the quantity reported as "BVH (MB)" in Table II.
    pub fn size_bytes(bvh: &WideBvh) -> u64 {
        let prim_slots: u64 = bvh
            .nodes
            .iter()
            .map(|n| match n {
                WideNode::Leaf { count, .. } => *count as u64,
                WideNode::Inner { .. } => 0,
            })
            .sum();
        bvh.nodes.len() as u64 * NODE_STRIDE + prim_slots * PRIM_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_addr_round_trip() {
        for id in [0u32, 1, 17, 100_000] {
            assert_eq!(BvhLayout::node_of_addr(BvhLayout::node_addr(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "not a BVH node address")]
    fn bad_node_addr_panics() {
        let _ = BvhLayout::node_of_addr(NODE_BASE_ADDR + 1);
    }

    #[test]
    fn regions_do_not_overlap() {
        // 3M nodes (larger than any generated scene) stay below PRIM_BASE.
        assert!(BvhLayout::node_addr(3_000_000) < PRIM_BASE_ADDR);
    }

    #[test]
    fn leaf_fetch_spans_all_records() {
        let (addr, len) = BvhLayout::leaf_fetch(10, 4);
        assert_eq!(addr, PRIM_BASE_ADDR + 10 * PRIM_STRIDE);
        assert_eq!(len as u64, 4 * PRIM_STRIDE);
    }
}
