//! Wide BVH ("BVHk"): the paper's traversed structure.
//!
//! A wide BVH allows up to `k` children per internal node (the paper, like
//! Vulkan-Sim, traverses BVH6: §II-C, Fig. 3). Each child of an internal
//! node is itself a node — either another internal node or a *leaf node*
//! holding a primitive range. Traversal-stack entries hold node identifiers
//! (standing in for the 8-byte node addresses of real hardware).

use crate::builder::{BinaryBvh, BinaryNode, BuildParams};
use crate::Primitive;
use sms_geom::Aabb;

/// Identifier of a node in a [`WideBvh`] (index into [`WideBvh::nodes`]).
pub type NodeId = u32;

/// A reference from an internal node to one of its children.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideChild {
    /// Child bounds, tested by the ray-box operation unit before the child
    /// is visited or pushed.
    pub aabb: Aabb,
    /// Child node id.
    pub node: NodeId,
}

/// A node of the wide BVH.
#[derive(Debug, Clone, PartialEq)]
pub enum WideNode {
    /// Internal node with 2..=k children.
    Inner {
        /// Children in build order.
        children: Vec<WideChild>,
    },
    /// Leaf node referencing `prim_order[first..first + count]`.
    Leaf {
        /// First index into [`WideBvh::prim_order`].
        first: u32,
        /// Number of primitives in the leaf.
        count: u32,
    },
}

/// A wide bounding volume hierarchy.
///
/// Build one with [`WideBvh::build`] (which constructs a binary SAH tree and
/// collapses it) or [`WideBvh::from_binary`].
#[derive(Debug, Clone, PartialEq)]
pub struct WideBvh {
    /// Maximum branching factor the tree was collapsed to.
    pub width: usize,
    /// Node pool; index 0 is the root (always an `Inner` unless the scene
    /// is a single leaf).
    pub nodes: Vec<WideNode>,
    /// Bounds of the whole scene.
    pub root_aabb: Aabb,
    /// Permutation of primitive indices referenced by leaves.
    pub prim_order: Vec<u32>,
}

impl WideBvh {
    /// Builds a wide BVH directly from primitives.
    pub fn build<P: Primitive>(prims: &[P], params: &BuildParams) -> Self {
        let binary = BinaryBvh::build(prims, params);
        Self::from_binary(&binary, params.branching_factor)
    }

    /// Collapses a binary BVH into a wide BVH with branching factor `width`.
    ///
    /// Collapse strategy: starting from a binary node, repeatedly replace the
    /// inner child whose subtree bounds have the largest surface area with
    /// its two children, until `width` children are reached or only leaves
    /// remain. This is the standard BVH2→BVHk conversion used by wide-BVH
    /// work the paper builds on.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn from_binary(binary: &BinaryBvh, width: usize) -> Self {
        assert!(width >= 2, "branching factor must be at least 2, got {width}");
        let mut out = WideBvh {
            width,
            nodes: Vec::with_capacity(binary.nodes.len()),
            root_aabb: binary.nodes[0].aabb(),
            prim_order: binary.prim_order.clone(),
        };
        collapse(binary, 0, width, &mut out.nodes);
        out
    }

    /// Number of internal nodes.
    pub fn inner_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, WideNode::Inner { .. })).count()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.len() - self.inner_count()
    }

    /// Maximum node depth (root = 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[WideNode], id: NodeId) -> usize {
            match &nodes[id as usize] {
                WideNode::Leaf { .. } => 0,
                WideNode::Inner { children } => {
                    1 + children.iter().map(|c| rec(nodes, c.node)).max().unwrap_or(0)
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Emits the wide node for binary node `bin_id` into `nodes`, returning its id.
fn collapse(binary: &BinaryBvh, bin_id: u32, width: usize, nodes: &mut Vec<WideNode>) -> NodeId {
    let my_id = nodes.len() as NodeId;
    match &binary.nodes[bin_id as usize] {
        BinaryNode::Leaf { first, count, .. } => {
            nodes.push(WideNode::Leaf { first: *first, count: *count });
            my_id
        }
        BinaryNode::Inner { left, right, .. } => {
            // Gather up to `width` binary subtree roots under this node.
            let mut slots: Vec<u32> = vec![*left, *right];
            loop {
                if slots.len() >= width {
                    break;
                }
                // Expand the inner slot with the largest surface area.
                let candidate = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| matches!(binary.nodes[s as usize], BinaryNode::Inner { .. }))
                    .max_by(|(_, &a), (_, &b)| {
                        let sa = binary.nodes[a as usize].aabb().surface_area();
                        let sb = binary.nodes[b as usize].aabb().surface_area();
                        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i);
                let Some(i) = candidate else { break };
                // Expanding adds one slot; never exceeds width.
                let expanded = slots.remove(i);
                let BinaryNode::Inner { left, right, .. } = &binary.nodes[expanded as usize] else {
                    unreachable!("candidate filter only selects inner nodes")
                };
                slots.push(*left);
                slots.push(*right);
            }

            nodes.push(WideNode::Inner { children: Vec::new() });
            let children: Vec<WideChild> = slots
                .into_iter()
                .map(|s| WideChild {
                    aabb: binary.nodes[s as usize].aabb(),
                    node: collapse(binary, s, width, nodes),
                })
                .collect();
            nodes[my_id as usize] = WideNode::Inner { children };
            my_id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrimHit;
    use sms_geom::{Ray, Triangle, Vec3};

    struct Tri(Triangle);
    impl Primitive for Tri {
        fn aabb(&self) -> Aabb {
            self.0.aabb()
        }
        fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
            self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
        }
    }

    fn grid(n: usize) -> Vec<Tri> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32 * 2.0;
                let z = (i / 16) as f32 * 2.0;
                Tri(Triangle::new(
                    Vec3::new(x, 0.0, z),
                    Vec3::new(x + 1.0, 0.0, z),
                    Vec3::new(x, 1.0, z),
                ))
            })
            .collect()
    }

    #[test]
    fn children_within_branching_factor() {
        for width in [2, 4, 6, 8] {
            let prims = grid(300);
            let params = BuildParams { branching_factor: width, ..BuildParams::default() };
            let bvh = WideBvh::build(&prims, &params);
            for n in &bvh.nodes {
                if let WideNode::Inner { children } = n {
                    assert!(children.len() >= 2);
                    assert!(children.len() <= width, "node has {} > {width}", children.len());
                }
            }
        }
    }

    #[test]
    fn all_primitives_reachable_once() {
        let prims = grid(257);
        let bvh = WideBvh::build(&prims, &BuildParams::default());
        let mut seen = vec![0u32; 257];
        fn walk(bvh: &WideBvh, id: NodeId, seen: &mut [u32]) {
            match &bvh.nodes[id as usize] {
                WideNode::Leaf { first, count } => {
                    for i in *first..*first + *count {
                        seen[bvh.prim_order[i as usize] as usize] += 1;
                    }
                }
                WideNode::Inner { children } => {
                    for c in children {
                        walk(bvh, c.node, seen);
                    }
                }
            }
        }
        walk(&bvh, 0, &mut seen);
        assert!(seen.iter().all(|&c| c == 1), "every primitive exactly once");
    }

    #[test]
    fn wider_trees_are_shallower() {
        let prims = grid(1024);
        let d2 =
            WideBvh::build(&prims, &BuildParams { branching_factor: 2, ..BuildParams::default() })
                .depth();
        let d6 = WideBvh::build(&prims, &BuildParams::default()).depth();
        assert!(d6 <= d2, "BVH6 depth {d6} should not exceed BVH2 depth {d2}");
    }

    #[test]
    fn child_bounds_match_subtrees() {
        let prims = grid(300);
        let bvh = WideBvh::build(&prims, &BuildParams::default());
        for n in &bvh.nodes {
            if let WideNode::Inner { children } = n {
                for c in children {
                    // Child AABB must contain everything in its subtree.
                    let mut sub = Aabb::EMPTY;
                    fn gather(bvh: &WideBvh, id: NodeId, acc: &mut Aabb) {
                        match &bvh.nodes[id as usize] {
                            WideNode::Leaf { .. } => {}
                            WideNode::Inner { children } => {
                                for c in children {
                                    acc.grow(&c.aabb);
                                    gather(bvh, c.node, acc);
                                }
                            }
                        }
                    }
                    gather(&bvh, c.node, &mut sub);
                    if !sub.is_empty() {
                        assert!(c.aabb.contains(&sub));
                    }
                }
            }
        }
    }

    #[test]
    fn single_leaf_scene() {
        let prims = grid(3);
        let params = BuildParams { max_leaf_size: 4, ..BuildParams::default() };
        let bvh = WideBvh::build(&prims, &params);
        assert_eq!(bvh.nodes.len(), 1);
        assert!(matches!(bvh.nodes[0], WideNode::Leaf { count: 3, .. }));
        assert_eq!(bvh.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn width_one_rejected() {
        let prims = grid(10);
        let binary = BinaryBvh::build(&prims, &BuildParams::default());
        let _ = WideBvh::from_binary(&binary, 1);
    }

    #[test]
    fn node_counts_consistent() {
        let prims = grid(500);
        let bvh = WideBvh::build(&prims, &BuildParams::default());
        assert_eq!(bvh.inner_count() + bvh.leaf_count(), bvh.nodes.len());
        assert!(bvh.inner_count() > 0);
    }
}
