//! Stackless BVH traversal with a restart trail (paper §VIII-A).
//!
//! The paper's related work discusses stackless traversal (Laine's restart
//! trail, extended to wide BVHs by Vaidyanathan et al.) as the *other*
//! answer to traversal-stack pressure: instead of spilling stack entries to
//! memory, keep only a per-level progress trail and **restart from the
//! root** whenever backtracking is needed, re-descending along the trail.
//! That trades off-chip stack traffic for extra node visits — the
//! computational overhead the paper notes SMS could reduce when combined.
//!
//! This module implements the trail traversal for our wide BVH so the
//! trade-off can be quantified (`extension_restart_trail` bench): the
//! restart variant performs zero stack memory traffic but inflates node
//! visits; the hierarchical stack keeps visits minimal at the cost of
//! spill traffic.
//!
//! Children are enumerated in *fixed node order* (not distance-sorted), the
//! deterministic order a trail can replay; the nearest hit is still exact
//! because every un-pruned leaf is tested under a shrinking `t_max`.

use crate::traverse::Hit;
use crate::wide::{NodeId, WideBvh, WideNode};
use crate::{PrimHit, Primitive};

/// Work counters of one restart-trail traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartStats {
    /// Nodes visited, including re-descents after restarts.
    pub node_visits: u64,
    /// Restarts from the root (each replaces a stack pop).
    pub restarts: u64,
}

/// Nearest-hit traversal without any traversal stack.
///
/// Returns the same nearest hit as [`crate::intersect_nearest`] (asserted
/// by tests) along with the work counters.
pub fn intersect_nearest_restart<P: Primitive>(
    bvh: &WideBvh,
    prims: &[P],
    ray: &sms_geom::Ray,
    t_min: f32,
    t_max: f32,
) -> (Option<Hit>, RestartStats) {
    let mut stats = RestartStats::default();
    let mut trail: Vec<u32> = vec![0; bvh.depth() + 2];
    let mut level = 0usize;
    let mut current: NodeId = 0;
    let mut best: Option<Hit> = None;
    let mut limit = t_max;

    'traverse: loop {
        stats.node_visits += 1;
        match &bvh.nodes[current as usize] {
            WideNode::Inner { children } => {
                // Advance over completed/missed children in fixed order.
                let mut k = trail[level] as usize;
                let mut descended = false;
                while k < children.len() {
                    let c = &children[k];
                    if c.aabb.intersect(ray, t_min, limit).is_some() {
                        current = c.node;
                        level += 1;
                        trail[level] = 0;
                        descended = true;
                        break;
                    }
                    k += 1;
                    trail[level] = k as u32;
                }
                if descended {
                    continue 'traverse;
                }
                // Node exhausted: back up (via restart).
            }
            WideNode::Leaf { first, count } => {
                for slot in *first..*first + *count {
                    let prim_id = bvh.prim_order[slot as usize];
                    if let Some(PrimHit { t, u, v }) =
                        prims[prim_id as usize].intersect(ray, t_min, limit)
                    {
                        limit = t;
                        best = Some(Hit { t, prim: prim_id, u, v });
                    }
                }
            }
        }

        // Backtrack: mark this child completed on the parent's trail and
        // restart from the root, re-descending along the trail.
        if level == 0 {
            break;
        }
        trail[level] = 0;
        level -= 1;
        trail[level] += 1;
        stats.restarts += 1;
        let target = level;
        current = 0;
        level = 0;
        while level < target {
            stats.node_visits += 1;
            let WideNode::Inner { children } = &bvh.nodes[current as usize] else {
                unreachable!("trail paths only run through internal nodes")
            };
            current = children[trail[level] as usize].node;
            level += 1;
        }
    }
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildParams;
    use sms_geom::{Aabb, DeterministicRng, Ray, SplitMix64, Triangle, Vec3};

    struct Tri(Triangle);
    impl Primitive for Tri {
        fn aabb(&self) -> Aabb {
            self.0.aabb()
        }
        fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
            self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
        }
    }

    fn scene(n: usize) -> Vec<Tri> {
        let mut rng = SplitMix64::new(0xAB);
        (0..n)
            .map(|_| {
                let c = rng.unit_vector() * rng.range_f32(1.0, 15.0);
                let a = rng.unit_vector() * rng.range_f32(0.4, 2.0);
                let b = rng.unit_vector() * rng.range_f32(0.4, 2.0);
                Tri(Triangle::new(c, c + a, c + b))
            })
            .collect()
    }

    #[test]
    fn matches_stack_traversal_hit_distance() {
        let prims = scene(4000);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let mut rng = SplitMix64::new(7);
        let mut hits = 0;
        for _ in 0..300 {
            let origin = rng.unit_vector() * 25.0;
            let target = rng.unit_vector() * 2.0;
            let ray = Ray::new(origin, target - origin);
            let reference =
                crate::intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut ());
            let (restart, _) = intersect_nearest_restart(&bvh, &prims, &ray, 0.0, f32::INFINITY);
            match (reference, restart) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    hits += 1;
                    assert!((a.t - b.t).abs() < 1e-4, "distance mismatch: {} vs {}", a.t, b.t);
                }
                (a, b) => panic!("hit/miss mismatch: {a:?} vs {b:?}"),
            }
        }
        assert!(hits > 50, "test needs real hits, got {hits}");
    }

    #[test]
    fn restart_inflates_node_visits() {
        let prims = scene(4000);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let mut rng = SplitMix64::new(9);
        let mut stack_visits = 0u64;
        let mut restart_visits = 0u64;
        let mut restarts = 0u64;
        for _ in 0..100 {
            let origin = rng.unit_vector() * 25.0;
            let ray = Ray::new(origin, -origin);
            // Count reference visits via the observer (pushes+pops ~ visits).
            let mut counter = sms_metrics::Histogram::new();
            let _ = crate::intersect_nearest(&bvh, &prims, &ray, 0.0, f32::INFINITY, &mut counter);
            stack_visits += counter.count();
            let (_, s) = intersect_nearest_restart(&bvh, &prims, &ray, 0.0, f32::INFINITY);
            restart_visits += s.node_visits;
            restarts += s.restarts;
        }
        assert!(restarts > 0, "deep traversals must restart");
        assert!(
            restart_visits > stack_visits,
            "restarting must cost extra visits ({restart_visits} vs {stack_visits})"
        );
    }

    #[test]
    fn single_leaf_and_miss_edge_cases() {
        let prims = scene(2);
        let bvh = crate::WideBvh::build(&prims, &BuildParams::default());
        let ray = Ray::new(Vec3::new(100.0, 100.0, 100.0), Vec3::new(0.0, 1.0, 0.0));
        let (hit, stats) = intersect_nearest_restart(&bvh, &prims, &ray, 0.0, f32::INFINITY);
        assert!(hit.is_none());
        assert!(stats.node_visits >= 1);
    }
}
