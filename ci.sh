#!/usr/bin/env bash
# Local CI for the sms-sim workspace. Offline-safe: every step resolves
# from path dependencies only (the proptest/criterion suite lives in the
# excluded `crates/proptests` workspace and is opt-in, see DESIGN.md).
#
#   ./ci.sh          # tier-1 build+test, clippy -D warnings, fmt --check
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> fault-injection suite"
cargo test -q -p sms-harness --test fault_injection

echo "==> fleet chaos suite (killed backend, torn journal, all-down degraded mode, hedging)"
cargo test -q -p sms-serve --test fleet_chaos
cargo test -q -p sms-serve --test fleet_e2e
cargo test -q -p sms-harness --test cache_robustness

echo "==> journal/json regression suite (schema goldens, non-finite floats, watchdog)"
cargo test -q -p sms-harness --test journal_schema
cargo test -q -p sms-harness --lib json::
cargo test -q -p sms-harness --lib journal::

echo "==> HLBVH suite (builder unit tests, golden vs binned SAH, worker determinism)"
cargo test -q -p sms-bvh --lib hlbvh
cargo test -q -p sms-sim --test hlbvh_golden

echo "==> stackless + predictor suite (escape links, golden vs stacked drivers, table semantics)"
cargo test -q -p sms-bvh --lib flat
cargo test -q -p sms-rtunit --lib predictor
cargo test -q -p sms-sim --test stackless_golden

echo "==> SMS_TRACE smoke (well-formed Chrome-trace JSON, Σ buckets == cycles)"
cargo test -q -p sms-harness --test trace_export
cargo test -q -p sms-sim --test attribution

echo "==> metrics suite (observation purity, ledger cross-checks, export goldens)"
cargo test -q -p sms-metrics
cargo test -q -p sms-sim --test metrics_observation
cargo test -q -p sms-sim --test metrics_schema
cargo test -q -p sms-harness --test metrics_byte_identity

echo "==> SMS_METRICS smoke (armed sweep; per-job Prometheus/CSV dumps strictly parsed)"
rm -f target/metrics.*.prom target/metrics.*.csv
SMS_METRICS=1 SMS_NO_CACHE=1 SMS_SCENES=WKND,SHIP SMS_BUILD_BENCH=0 \
  SMS_METRICS_OUT=target/metrics.prom SMS_METRICS_CSV=target/metrics.csv \
  SMS_BENCH_OUT=target/BENCH_smoke.json SMS_BENCH_METRICS_OUT=target/BENCH_metrics.json \
  cargo run --release -q -p sms-bench --bin perf_baseline > /dev/null
cargo run --release -q -p sms-bench --bin promlint -- \
  target/metrics.*.prom target/metrics.*.csv

echo "==> proptest suite (opt-in: needs crates.io; skipped when offline)"
if cargo metadata --offline --manifest-path crates/proptests/Cargo.toml \
     --format-version 1 > /dev/null 2>&1; then
  cargo test -q --manifest-path crates/proptests/Cargo.toml --test prop_metrics
  cargo test -q --manifest-path crates/proptests/Cargo.toml --test prop_hlbvh
  cargo test -q --manifest-path crates/proptests/Cargo.toml --test prop_stackless
else
  echo "    (skipped: proptest registry deps unavailable offline)"
fi

echo "==> breakdown sweep smoke (SMS_BREAKDOWN=1, SL + PRED columns included;"
echo "    conservation — predictor_wait bucket included — asserted in-sim)"
SMS_BREAKDOWN=1 SMS_NO_CACHE=1 SMS_SCENES=WKND,SHIP \
  cargo bench --bench breakdown_stalls > /dev/null

echo "==> competitor byte-identity (SMS_STACKLESS=0 SMS_PREDICT=0 drops the SL/PRED"
echo "    columns; every remaining cache entry must be byte-identical to the"
echo "    features-on sweep's entry for the same cell — sha256-verified)"
rm -rf target/compet-on-cache target/compet-off-cache
# Absolute cache paths: cargo bench runs the bench with the package dir as
# CWD, so a relative SMS_CACHE_DIR would land under crates/bench/.
SMS_CACHE_DIR="$PWD/target/compet-on-cache" SMS_SCENES=WKND,SHIP \
  cargo bench --bench fig13_sms_ipc > /dev/null
SMS_STACKLESS=0 SMS_PREDICT=0 \
  SMS_CACHE_DIR="$PWD/target/compet-off-cache" SMS_SCENES=WKND,SHIP \
  cargo bench --bench fig13_sms_ipc > /dev/null
off_entries=0
for f in target/compet-off-cache/*.json; do
  b=$(basename "$f")
  [ -f "target/compet-on-cache/$b" ] || { echo "features-on sweep lost cache entry $b"; exit 1; }
  on_sum=$(sha256sum "target/compet-on-cache/$b" | cut -d' ' -f1)
  off_sum=$(sha256sum "$f" | cut -d' ' -f1)
  [ "$on_sum" = "$off_sum" ] || { echo "cache entry $b differs with competitors enabled"; exit 1; }
  off_entries=$((off_entries + 1))
done
[ "$off_entries" -eq 10 ] || { echo "expected 10 baseline cache entries (2 scenes x 5 configs), saw $off_entries"; exit 1; }
on_entries=$(ls target/compet-on-cache/*.json | wc -l)
[ "$on_entries" -eq 14 ] || { echo "expected 14 features-on cache entries (10 + SL/PRED), saw $on_entries"; exit 1; }

echo "==> validator-on sweep smoke (SMS_VALIDATE=1, cache bypassed)"
SMS_VALIDATE=1 SMS_NO_CACHE=1 SMS_SCENES=WKND,SHIP SMS_BUILD_BENCH=0 \
  SMS_BENCH_OUT=target/BENCH_validate.json \
  cargo run --release -q -p sms-bench --bin perf_baseline > /dev/null

echo "==> SMS_HLBVH sweep smoke (HLBVH-built trees, cache bypassed both directions)"
SMS_HLBVH=1 SMS_SCENES=WKND,SHIP SMS_BUILD_BENCH=0 \
  SMS_BENCH_OUT=target/BENCH_hlbvh.json \
  cargo run --release -q -p sms-bench --bin perf_baseline > /dev/null

echo "==> serve smoke (ephemeral port, client sweep, /metrics + /healthz, graceful drain)"
rm -f target/serve-addr target/serve-smoke.jsonl
rm -rf target/serve-smoke-cache
SMS_SERVE_JOURNAL=target/serve-smoke.jsonl SMS_CACHE_DIR=target/serve-smoke-cache \
  cargo run --release -q -p sms-serve --bin sms-serve -- \
  --addr 127.0.0.1:0 --addr-file target/serve-addr --workers 2 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s target/serve-addr ] && break
  kill -0 "$serve_pid" 2> /dev/null || { echo "sms-serve died before binding"; exit 1; }
  sleep 0.1
done
[ -s target/serve-addr ] || { echo "sms-serve never wrote its address"; exit 1; }
serve_addr=$(cat target/serve-addr)
serve_client() { cargo run --release -q -p sms-serve --bin sms-client -- --addr "$serve_addr" "$@"; }
serve_client sweep --scenes WKND,SHIP --configs RB_8,RB_8+SH_8+SK+RA
serve_client probe WKND RB_8 > /dev/null
serve_client health | grep -q ok
serve_client metrics > target/serve-metrics.prom
grep -q '^sms_serve_jobs_total 4$' target/serve-metrics.prom
cargo run --release -q -p sms-bench --bin promlint -- target/serve-metrics.prom
serve_client drain
wait "$serve_pid" || { echo "sms-serve did not drain cleanly"; exit 1; }

echo "==> fleet smoke (2 backends, one injected kill, sweep survives, strict metrics)"
rm -f target/fleet-addr target/fleet-a-addr target/fleet-b-addr target/fleet-journal.jsonl
rm -rf target/fleet-smoke-cache
# Backend A dies of a deterministic injected kill after its first
# completed job; the fleet must finish the sweep on backend B alone.
SMS_FAULT="kill:jobs=1" SMS_CACHE_DIR=target/fleet-smoke-cache \
  cargo run --release -q -p sms-serve --bin sms-serve -- \
  --addr 127.0.0.1:0 --addr-file target/fleet-a-addr --workers 1 &
backend_a_pid=$!
SMS_CACHE_DIR=target/fleet-smoke-cache \
  cargo run --release -q -p sms-serve --bin sms-serve -- \
  --addr 127.0.0.1:0 --addr-file target/fleet-b-addr --workers 2 &
backend_b_pid=$!
for f in target/fleet-a-addr target/fleet-b-addr; do
  for _ in $(seq 1 100); do
    [ -s "$f" ] && break
    sleep 0.1
  done
  [ -s "$f" ] || { echo "fleet backend never wrote $f"; exit 1; }
done
SMS_FLEET_JOURNAL=target/fleet-journal.jsonl SMS_CACHE_DIR=target/fleet-smoke-cache \
  SMS_FLEET_BACKENDS="$(cat target/fleet-a-addr),$(cat target/fleet-b-addr)" \
  cargo run --release -q -p sms-serve --bin sms-fleet -- \
  --addr 127.0.0.1:0 --addr-file target/fleet-addr &
fleet_pid=$!
for _ in $(seq 1 100); do
  [ -s target/fleet-addr ] && break
  kill -0 "$fleet_pid" 2> /dev/null || { echo "sms-fleet died before binding"; exit 1; }
  sleep 0.1
done
[ -s target/fleet-addr ] || { echo "sms-fleet never wrote its address"; exit 1; }
fleet_addr=$(cat target/fleet-addr)
fleet_client() { cargo run --release -q -p sms-serve --bin sms-client -- --addr "$fleet_addr" "$@"; }
fleet_client sweep --scenes WKND,SHIP --configs RB_8,RB_8+SH_8+SK+RA
fleet_client health | grep -q ok
fleet_client metrics > target/fleet-metrics.prom
grep -q '^sms_fleet_cells_total 4$' target/fleet-metrics.prom
grep -q '^sms_fleet_cells_failed_total 0$' target/fleet-metrics.prom
cargo run --release -q -p sms-bench --bin promlint -- target/fleet-metrics.prom
grep -q job_finished target/fleet-journal.jsonl
fleet_client drain
wait "$fleet_pid" || { echo "sms-fleet did not drain cleanly"; exit 1; }
if wait "$backend_a_pid"; then
  echo "backend A survived an injected kill that should have crashed it"
  exit 1
fi
cargo run --release -q -p sms-serve --bin sms-client -- \
  --addr "$(cat target/fleet-b-addr)" drain
wait "$backend_b_pid" || { echo "fleet backend B did not drain cleanly"; exit 1; }

echo "==> traced fleet smoke (SMS_TRACE_CTX armed end to end, merged + validated)"
rm -f target/dtrace-addr target/dtrace-a-addr target/dtrace-b-addr
rm -f target/dtrace-fleet.jsonl target/dtrace-a.jsonl target/dtrace-b.jsonl
rm -f target/dtrace-sim-a.*.json target/dtrace-sim-b.*.json target/trace-merged.json
rm -rf target/dtrace-cache
# One fixed trace context shared by the client and (for sim-trace linkage)
# both backends; backend A again dies of an injected kill so the merged
# trace must show the fleet retrying/hedging the orphaned cells onto B.
# Distinct SMS_TRACE stems per backend: concurrent processes must never
# write the same sim-trace file.
trace_ctx="00000000c0ffee42-0000000000000001"
SMS_FAULT="kill:jobs=1" SMS_CACHE_DIR=target/dtrace-cache \
  SMS_TRACE=target/dtrace-sim-a.json SMS_TRACE_CTX="$trace_ctx" \
  SMS_SERVE_JOURNAL=target/dtrace-a.jsonl \
  cargo run --release -q -p sms-serve --bin sms-serve -- \
  --addr 127.0.0.1:0 --addr-file target/dtrace-a-addr --workers 1 &
dtrace_a_pid=$!
SMS_CACHE_DIR=target/dtrace-cache \
  SMS_TRACE=target/dtrace-sim-b.json SMS_TRACE_CTX="$trace_ctx" \
  SMS_SERVE_JOURNAL=target/dtrace-b.jsonl \
  cargo run --release -q -p sms-serve --bin sms-serve -- \
  --addr 127.0.0.1:0 --addr-file target/dtrace-b-addr --workers 2 &
dtrace_b_pid=$!
for f in target/dtrace-a-addr target/dtrace-b-addr; do
  for _ in $(seq 1 100); do
    [ -s "$f" ] && break
    sleep 0.1
  done
  [ -s "$f" ] || { echo "traced backend never wrote $f"; exit 1; }
done
SMS_FLEET_JOURNAL=target/dtrace-fleet.jsonl SMS_CACHE_DIR=target/dtrace-cache \
  SMS_FLEET_HEDGE_MS=1 \
  SMS_FLEET_BACKENDS="$(cat target/dtrace-a-addr),$(cat target/dtrace-b-addr)" \
  cargo run --release -q -p sms-serve --bin sms-fleet -- \
  --addr 127.0.0.1:0 --addr-file target/dtrace-addr &
dtrace_fleet_pid=$!
for _ in $(seq 1 100); do
  [ -s target/dtrace-addr ] && break
  kill -0 "$dtrace_fleet_pid" 2> /dev/null || { echo "traced sms-fleet died before binding"; exit 1; }
  sleep 0.1
done
[ -s target/dtrace-addr ] || { echo "traced sms-fleet never wrote its address"; exit 1; }
SMS_TRACE_CTX="$trace_ctx" \
  cargo run --release -q -p sms-serve --bin sms-client -- \
  --addr "$(cat target/dtrace-addr)" sweep \
  --scenes WKND,SHIP --configs RB_8,RB_8+SH_8+SK+RA
cargo run --release -q -p sms-serve --bin sms-client -- \
  --addr "$(cat target/dtrace-addr)" drain
wait "$dtrace_fleet_pid" || { echo "traced sms-fleet did not drain cleanly"; exit 1; }
if wait "$dtrace_a_pid"; then
  echo "traced backend A survived an injected kill that should have crashed it"
  exit 1
fi
cargo run --release -q -p sms-serve --bin sms-client -- \
  --addr "$(cat target/dtrace-b-addr)" drain
wait "$dtrace_b_pid" || { echo "traced backend B did not drain cleanly"; exit 1; }
# Strict span-schema validation on every journal that drained cleanly
# (backend A was killed mid-write, so its journal may end in a torn line —
# the merge below skips torn lines but validate is strict by design).
cargo run --release -q -p sms-serve --bin sms-trace -- validate \
  target/dtrace-fleet.jsonl target/dtrace-b.jsonl
grep -q '"event":"span"' target/dtrace-fleet.jsonl \
  || { echo "traced fleet journal carries no span lines"; exit 1; }
# Merge fleet + backend journals and any sim traces the backends exported
# into one Chrome-trace file, then assert it really carries dispatch
# slices and cross-track flow arrows for this trace.
sim_args=()
for f in target/dtrace-sim-a.*.json target/dtrace-sim-b.*.json; do
  [ -f "$f" ] && sim_args+=(--sim "$f")
done
cargo run --release -q -p sms-serve --bin sms-trace -- merge \
  --trace 00000000c0ffee42 --out target/trace-merged.json \
  "${sim_args[@]}" \
  target/dtrace-fleet.jsonl target/dtrace-a.jsonl target/dtrace-b.jsonl
grep -q '"name":"dispatch"' target/trace-merged.json \
  || { echo "merged trace carries no dispatch spans"; exit 1; }
grep -q '"ph":"s"' target/trace-merged.json \
  || { echo "merged trace carries no flow arrows"; exit 1; }

echo "==> serve_loadtest smoke (4 concurrent clients, cold then warm)"
# $PWD: cargo bench processes run with the package dir as cwd.
time SMS_BENCH_SERVE_OUT="$PWD/target/BENCH_serve.json" \
  cargo bench --bench serve_loadtest

echo "==> fleet_loadtest smoke (4 clients through the fleet, hedging past a straggler)"
time SMS_BENCH_SERVE_OUT="$PWD/target/BENCH_serve.json" \
  cargo bench --bench fleet_loadtest

echo "==> cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf

# unwrap_used/expect_used are denied at the crate level in sms-harness
# (see crates/harness/src/lib.rs + clippy.toml), so the workspace clippy
# above already enforces them; this names the check in CI output.
echo "==> clippy: no unwrap/expect in sms-harness library code"
cargo clippy -p sms-harness --lib -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> perf_baseline + HLBVH build-throughput smoke (timed; includes the"
echo "    SAH-vs-HLBVH build matrix on the paper-scale scaled scenes)"
time SMS_SCENES=WKND,SHIP SMS_BENCH_OUT=target/BENCH_core.json \
  cargo run --release -q -p sms-bench --bin perf_baseline

echo "ci.sh: all checks passed"
