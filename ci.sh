#!/usr/bin/env bash
# Local CI for the sms-sim workspace. Offline-safe: every step resolves
# from path dependencies only (the proptest/criterion suite lives in the
# excluded `crates/proptests` workspace and is opt-in, see DESIGN.md).
#
#   ./ci.sh          # tier-1 build+test, clippy -D warnings, fmt --check
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "ci.sh: all checks passed"
