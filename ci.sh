#!/usr/bin/env bash
# Local CI for the sms-sim workspace. Offline-safe: every step resolves
# from path dependencies only (the proptest/criterion suite lives in the
# excluded `crates/proptests` workspace and is opt-in, see DESIGN.md).
#
#   ./ci.sh          # tier-1 build+test, clippy -D warnings, fmt --check
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> fault-injection suite"
cargo test -q -p sms-harness --test fault_injection

echo "==> journal/json regression suite (schema goldens, non-finite floats, watchdog)"
cargo test -q -p sms-harness --test journal_schema
cargo test -q -p sms-harness --lib json::
cargo test -q -p sms-harness --lib journal::

echo "==> SMS_TRACE smoke (well-formed Chrome-trace JSON, Σ buckets == cycles)"
cargo test -q -p sms-harness --test trace_export
cargo test -q -p sms-sim --test attribution

echo "==> breakdown sweep smoke (SMS_BREAKDOWN=1; conservation asserted in-sim)"
SMS_BREAKDOWN=1 SMS_NO_CACHE=1 SMS_SCENES=WKND,SHIP \
  cargo bench --bench breakdown_stalls > /dev/null

echo "==> validator-on sweep smoke (SMS_VALIDATE=1, cache bypassed)"
SMS_VALIDATE=1 SMS_NO_CACHE=1 SMS_SCENES=WKND,SHIP \
  SMS_BENCH_OUT=target/BENCH_validate.json \
  cargo run --release -q -p sms-bench --bin perf_baseline > /dev/null

echo "==> cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::perf

# unwrap_used/expect_used are denied at the crate level in sms-harness
# (see crates/harness/src/lib.rs + clippy.toml), so the workspace clippy
# above already enforces them; this names the check in CI output.
echo "==> clippy: no unwrap/expect in sms-harness library code"
cargo clippy -p sms-harness --lib -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> perf_baseline smoke (throughput is informational, no threshold)"
time SMS_SCENES=WKND,SHIP SMS_BENCH_OUT=target/BENCH_core.json \
  cargo run --release -q -p sms-bench --bin perf_baseline

echo "ci.sh: all checks passed"
